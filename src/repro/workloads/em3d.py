"""em3d workload model: electromagnetic wave propagation on a bipartite
graph.

Em3d (the message-passing version run on one processor, as in the paper)
relaxes values on a bipartite graph of E-field and H-field nodes.  Each
iteration, every E node reads the values of its ``degree`` H-node
dependencies (scattered across the H region — the nodes were created in
random order), reads the matching coefficients (sequential within the
node's own record), and writes its value; then the H phase does the same
against E nodes.

The paper's run models 6000 nodes in ~4.5 MB of dynamically allocated
space, explicitly remapped into **16 superpages** (1120 pages = 4,587,520
bytes) before the time-step iterations; the remap's measured cost —
1,659,154 cycles, of which 1,497,067 is cache flushing — is experiment E5.

Em3d has the worst cache behaviour of the five programs (~84 % hit rate)
and its value reads give the default 128-entry MTLB a ~91 % hit rate,
which is why it is the paper's sensitivity-study workload (Figure 4).

``scale`` multiplies the iteration count; the graph (footprint) is fixed
at the paper's size.
"""

from __future__ import annotations

import numpy as np

from ..trace import synth
from ..trace.events import MapRegion, Phase, Remap
from ..trace.trace import Trace, make_segment
from .base import Workload, register

#: Paper parameters.
NODES = 6000  # per side (E and H)
DEGREE = 18
ITERATIONS = 12

#: Dependency locality: most of a node's neighbours were allocated nearby
#: (the generator links nodes created around the same time), with a
#: minority of long-range links.  The +-window of records is what sits in
#: the TLB while a phase sweeps the node array.
DEP_WINDOW = 330
LOCAL_FRACTION = 0.91

#: Node record: value + padding + degree x (pointer, coefficient).
RECORD_BYTES = 16 + DEGREE * 16  # 304 bytes

#: Heap base: 16 KB past a 4 MB boundary so the 1120-page region tiles
#: into exactly 16 superpages (asserted in the tests).
HEAP_BASE = 0x1000_4000

#: The region the program remaps: 1120 base pages, as in the paper.
REGION_BYTES = 1120 * 4096

GAP = 2


@register
class Em3d(Workload):
    """The em3d model; see the module docstring."""

    name = "em3d"
    description = (
        "bipartite E/H graph relaxation, 6000+6000 nodes, ~4.4MB "
        "remapped into 16 superpages; poor cache locality"
    )

    def build(self, scale: float = 1.0, seed: int = 1998) -> Trace:
        rng = self._rng(seed)
        iterations = self._scaled(ITERATIONS, scale, minimum=1)
        trace = Trace(self.name, text_size=64 << 10)

        e_base = HEAP_BASE
        h_base = HEAP_BASE + NODES * RECORD_BYTES
        trace.add(MapRegion(HEAP_BASE, REGION_BYTES))

        # Graph construction: nodes are written in allocation order and
        # dependency lists are filled with pointers to random far-side
        # nodes.  One write per record word.
        init_addrs = synth.expand_records(
            HEAP_BASE
            + np.arange(2 * NODES, dtype=np.int64) * RECORD_BYTES,
            fields=RECORD_BYTES // 8,
        )
        trace.add(Phase("initialize"))
        trace.add(
            make_segment(
                "init",
                init_addrs,
                write_mask=np.ones(len(init_addrs), dtype=bool),
                gap=GAP,
                text_pages=6,
            )
        )

        # The program remaps after allocation+initialisation, before the
        # time-step loop (paper Section 3.3).
        trace.add(Remap(HEAP_BASE, REGION_BYTES))

        # Fixed dependency structure: each node's neighbour list is
        # mostly near-by records plus a few long-range links.
        e_deps = self._local_deps(rng)
        h_deps = self._local_deps(rng)

        e_phase = self._phase_addrs(e_base, h_base, e_deps)
        h_phase = self._phase_addrs(h_base, e_base, h_deps)
        e_writes = self._phase_writes()
        h_writes = e_writes

        for it in range(iterations):
            trace.add(Phase(f"iter-{it}"))
            trace.add(
                make_segment(
                    f"e-phase-{it}", e_phase, write_mask=e_writes, gap=GAP,
                    text_pages=6,
                )
            )
            trace.add(
                make_segment(
                    f"h-phase-{it}", h_phase, write_mask=h_writes, gap=GAP,
                    text_pages=6,
                )
            )
        return trace

    @staticmethod
    def _local_deps(rng: np.random.Generator) -> np.ndarray:
        """Neighbour indices: LOCAL_FRACTION within +-DEP_WINDOW."""
        own = np.arange(NODES, dtype=np.int64)[:, None]
        offsets = rng.integers(-DEP_WINDOW, DEP_WINDOW + 1,
                               size=(NODES, DEGREE))
        local = (own + offsets) % NODES
        remote = rng.integers(0, NODES, size=(NODES, DEGREE))
        mask = rng.random((NODES, DEGREE)) < LOCAL_FRACTION
        return np.where(mask, local, remote)

    @staticmethod
    def _phase_addrs(
        own_base: int, other_base: int, deps: np.ndarray
    ) -> np.ndarray:
        """Addresses of one relaxation phase, in execution order.

        Per node: DEGREE x (remote value read, own coefficient read),
        then one write of the node's own value field.
        """
        nodes, degree = deps.shape
        node_idx = np.arange(nodes, dtype=np.int64)
        own_record = own_base + node_idx * RECORD_BYTES
        remote_values = other_base + deps.astype(np.int64) * RECORD_BYTES
        coeffs = (
            own_record[:, None]
            + 16
            + np.arange(degree, dtype=np.int64)[None, :] * 16
            + 8
        )
        per_node = np.empty((nodes, 2 * degree + 1), dtype=np.int64)
        per_node[:, 0:2 * degree:2] = remote_values
        per_node[:, 1:2 * degree:2] = coeffs
        per_node[:, 2 * degree] = own_record  # value write
        return per_node.reshape(-1)

    @staticmethod
    def _phase_writes() -> np.ndarray:
        """Write mask matching :meth:`_phase_addrs` layout."""
        per_node = np.zeros(2 * DEGREE + 1, dtype=bool)
        per_node[2 * DEGREE] = True
        return np.tile(per_node, NODES)
