"""Synthetic reference-stream generators.

Vectorised building blocks for workload models, sensitivity studies and
tests: sequential/strided streams, uniform and Zipf-distributed random
access, and pointer-chase permutations.  All take an explicit
``numpy.random.Generator`` so every trace is reproducible from a seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def sequential(
    base: int, length: int, stride: int = 8, count: Optional[int] = None
) -> np.ndarray:
    """Addresses walking ``[base, base+length)`` with *stride* spacing.

    If *count* exceeds one pass, the walk wraps around (streaming reuse).
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    per_pass = max(1, length // stride)
    if count is None:
        count = per_pass
    idx = np.arange(count, dtype=np.int64) % per_pass
    return base + idx * stride


def strided(
    base: int, count: int, stride: int
) -> np.ndarray:
    """*count* addresses at fixed *stride* from *base* (no wrap)."""
    return base + np.arange(count, dtype=np.int64) * stride


def uniform_random(
    rng: np.random.Generator,
    base: int,
    length: int,
    count: int,
    align: int = 8,
) -> np.ndarray:
    """*count* uniformly random addresses within ``[base, base+length)``."""
    if length < align:
        raise ValueError("region smaller than alignment")
    slots = length // align
    idx = rng.integers(0, slots, size=count, dtype=np.int64)
    return base + idx * align


def zipf_random(
    rng: np.random.Generator,
    base: int,
    length: int,
    count: int,
    s: float = 1.2,
    align: int = 8,
) -> np.ndarray:
    """Zipf-skewed random addresses (hot head, long tail).

    Slot *k* is drawn with probability proportional to ``1/(k+1)**s``,
    then slots are scattered over the region with a fixed pseudo-random
    permutation so the hot set is not physically contiguous.
    """
    slots = length // align
    if slots <= 0:
        raise ValueError("region smaller than alignment")
    ranks = rng.zipf(s, size=count).astype(np.int64) - 1
    ranks %= slots
    # Scatter ranks across the region deterministically.
    scatter = (ranks * 2654435761) % slots
    return base + scatter * align


def hot_cold(
    rng: np.random.Generator,
    base: int,
    length: int,
    count: int,
    hot_pages: int,
    hot_fraction: float,
    align: int = 8,
    hot_seed: int = 0,
) -> np.ndarray:
    """Random addresses with an explicit page-level hot set.

    A fraction *hot_fraction* of accesses land (uniformly) on *hot_pages*
    base pages scattered across the region; the rest are uniform over the
    whole region.  This gives workload models direct control over their
    instantaneous TLB working set — the quantity the paper's results
    hinge on — while keeping the hot pages physically dispersed.
    """
    pages = length >> 12
    if pages <= 0:
        raise ValueError("region smaller than a base page")
    hot_pages = max(1, min(hot_pages, pages))
    if not 0.0 <= hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in [0, 1]")
    hot_set = np.random.default_rng(hot_seed ^ 0x5DEECE66D).permutation(
        pages
    )[:hot_pages].astype(np.int64)
    is_hot = rng.random(count) < hot_fraction
    cold_idx = rng.integers(0, pages, size=count, dtype=np.int64)
    hot_idx = hot_set[rng.integers(0, hot_pages, size=count)]
    page_idx = np.where(is_hot, hot_idx, cold_idx)
    slots = 4096 // align
    offsets = rng.integers(0, slots, size=count, dtype=np.int64) * align
    return base + (page_idx << 12) + offsets


def pointer_chase_order(
    rng: np.random.Generator, base: int, nodes: int, node_bytes: int
) -> np.ndarray:
    """Addresses of *nodes* records visited in one random traversal order.

    Models a linked structure whose nodes were allocated (and later
    visited) in an order with no spatial locality.
    """
    order = rng.permutation(nodes).astype(np.int64)
    return base + order * node_bytes

def interleave(*streams: np.ndarray) -> np.ndarray:
    """Round-robin interleave equal-length address streams."""
    if not streams:
        raise ValueError("need at least one stream")
    n = min(len(s) for s in streams)
    out = np.empty(n * len(streams), dtype=np.int64)
    for i, stream in enumerate(streams):
        out[i :: len(streams)] = stream[:n]
    return out


def expand_records(
    starts: np.ndarray, fields: int, field_stride: int = 8
) -> np.ndarray:
    """Expand record base addresses into per-field accesses.

    For each start address, emits *fields* consecutive addresses spaced
    *field_stride* apart — the access pattern of touching a structure's
    members after following a pointer to it.
    """
    if fields <= 0:
        raise ValueError("fields must be positive")
    offsets = np.arange(fields, dtype=np.int64) * field_stride
    return (starts[:, None] + offsets[None, :]).reshape(-1)
