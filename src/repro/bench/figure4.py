"""Experiments E3/E4 — Figure 4: em3d's sensitivity to MTLB geometry.

Figure 4(A) compares em3d's runtime on a 128-entry-CPU-TLB system without
an MTLB against MTLB configurations sweeping entries {128, 256, 512} and
associativity {2-way, 4-way, full}.  The paper's findings:

* the no-MTLB system is ~2 % faster than the *default* (128-entry 2-way)
  MTLB configuration — em3d is the one program where this happens;
* doubling MTLB size or raising associativity erases that advantage;
* returns diminish quickly beyond that.

Figure 4(B) reports the average time per cache fill across the same
configurations: the no-MTLB baseline, plus an MTLB overhead that shrinks
from ~10 cycles down to ~1.5 as the MTLB grows, with a 1-MMC-cycle floor
from the shadow-address check on every operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sim.config import figure4_configs
from ..sim.results import RunResult, render_table
from .runner import BenchContext

WORKLOAD = "em3d"
BASELINE = "tlb128"


@dataclass
class Figure4Result:
    """Runs keyed by configuration label, plus rendered reports."""

    runs: Dict[str, RunResult]
    report_a: str
    report_b: str
    shape_errors: List[str]


def run_figure4(
    context: Optional[BenchContext] = None, progress: bool = False
) -> Figure4Result:
    """Run the Figure 4 sweep on em3d.

    Routed through :meth:`BenchContext.run_matrix` (and so the sweep
    scheduler): the sweep checkpoints per cell, and with a result store
    attached to the context a rerun is served from cache.
    """
    context = context or BenchContext()
    configs = figure4_configs()
    matrix = context.run_matrix(
        [WORKLOAD], configs, BASELINE, progress=progress,
        checkpoint="fig4",
    )
    runs: Dict[str, RunResult] = {
        label: matrix.get(WORKLOAD, label) for label in configs
    }
    report_a = _render_a(runs)
    report_b = _render_b(runs)
    errors = check_figure4_shape(runs)
    return Figure4Result(
        runs=runs, report_a=report_a, report_b=report_b,
        shape_errors=errors,
    )


def _render_a(runs: Dict[str, RunResult]) -> str:
    base = runs[BASELINE].total_cycles
    rows = [
        [label, f"{run.total_cycles / base:.4f}",
         f"{100 * run.stats.mtlb_hit_rate:.1f}%"]
        for label, run in runs.items()
    ]
    return render_table(
        ["config", "runtime vs no-MTLB", "MTLB hit rate"],
        rows,
        title="Figure 4(A): em3d runtime, 128-entry CPU TLB, MTLB sweep",
    )


def _render_b(runs: Dict[str, RunResult]) -> str:
    base_fill = runs[BASELINE].stats.avg_fill_cycles
    rows = []
    for label, run in runs.items():
        fill = run.stats.avg_fill_cycles
        rows.append(
            [
                label,
                f"{fill:.2f}",
                f"{fill - base_fill:+.2f}",
            ]
        )
    return render_table(
        ["config", "avg CPU cycles per cache fill", "delta vs no-MTLB"],
        rows,
        title="Figure 4(B): average time per cache fill (em3d)",
    )


def check_figure4_shape(runs: Dict[str, RunResult]) -> List[str]:
    """Verify the paper's Figure 4 claims."""
    errors: List[str] = []
    base = runs[BASELINE].total_cycles
    default = runs["tlb128+mtlb1282w"].total_cycles
    bigger = runs["tlb128+mtlb2562w"].total_cycles
    wider = runs["tlb128+mtlb1284w"].total_cycles
    best = min(
        run.total_cycles for label, run in runs.items() if label != BASELINE
    )

    # The default MTLB is within a few percent of (possibly behind) the
    # no-MTLB system; the paper measured it ~2% behind.
    if not 0.97 <= default / base <= 1.06:
        errors.append(
            f"default MTLB config at {default / base:.3f}x of no-MTLB "
            "(expected within [0.97, 1.06])"
        )
    # Growing or widening the MTLB erases the no-MTLB advantage.
    if min(bigger, wider) > base * 1.005:
        errors.append(
            "neither doubling size nor raising associativity closes the "
            "no-MTLB advantage"
        )
    # Diminishing returns: the best configuration is not dramatically
    # better than the 256-entry 4-way point.
    plateau = runs["tlb128+mtlb2564w"].total_cycles
    if plateau > best * 1.02:
        errors.append("no plateau: 256/4-way still >2% off the best config")

    # Figure 4(B): fill-time overhead shrinks as the MTLB improves, with
    # a positive floor from the shadow check.
    base_fill = runs[BASELINE].stats.avg_fill_cycles
    worst_fill = runs["tlb128+mtlb1282w"].stats.avg_fill_cycles
    best_fill = min(
        run.stats.avg_fill_cycles
        for label, run in runs.items()
        if label != BASELINE
    )
    if not worst_fill > best_fill > base_fill:
        errors.append(
            "fill-time ordering violated: expected "
            "default-MTLB > best-MTLB > no-MTLB"
        )
    if worst_fill - base_fill > 24:
        errors.append(
            f"default MTLB adds {worst_fill - base_fill:.1f} cycles per "
            "fill (expected ~an MTLB-fill DRAM access at most)"
        )
    return errors
