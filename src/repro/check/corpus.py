"""Seeded planted-bug corpus: end-to-end validation of repro.check.

Each :class:`PlantedBug` deterministically corrupts one component of a
live machine at a fixed boundary of a synthetic workload (built on the
same state-corruption surface as the PR 1 fault layer: shadow-table
bits, cached MTLB ways, cache metadata).  The corpus is the proof the
tooling works:

* every ``kind="sanitize"`` bug must be caught by the sanitizer suite
  as an :class:`~repro.errors.InvariantViolation` naming the planted
  component;
* every ``kind="diff"`` bug corrupts only the *vector* engine's run, so
  the lockstep harness must report its first divergence at the planted
  boundary in the planted component (the PR-8 bugs pin their own
  machine — set-associative / fault-armed — to reach the lifted vector
  paths);
* every bug's failure must survive :func:`~repro.check.shrink.shrink_trace`
  down to a ≤1000-reference standalone repro.

``repro check corpus`` runs :func:`validate_corpus` and fails CI if any
bug escapes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..errors import InvariantViolation
from ..sim.config import CacheConfig, SystemConfig, paper_mtlb
from ..trace.events import MapRegion, Remap
from ..trace.trace import Trace, make_segment
from .lockstep import run_lockstep

#: Region the corpus workload maps and remaps to a shadow superpage.
REGION_BASE = 0x0200_0000
REGION_SIZE = 1 << 20

#: Boundary index the bugs fire at: 0 = MapRegion, 1 = Remap, 2 = the
#: first reference segment — so the machine is warm (MTLB ways cached,
#: cache partly filled, shadow table live) when the corruption lands.
WARM_BOUNDARY = 2


@dataclass
class PlantedBug:
    """One deterministic, seeded corruption of live machine state."""

    name: str
    #: "sanitize" (caught by the invariant suite) or "diff" (caught by
    #: the lockstep harness as a scalar/vector divergence).
    kind: str
    #: Component the tooling must attribute the failure to.
    component: str
    #: What the corruption models.
    description: str
    corrupt: Callable[[object], None] = field(repr=False)
    #: Boundary index the corruption fires at.
    boundary: int = WARM_BOUNDARY
    #: Engine whose run is corrupted; None = every run (sanitizer bugs).
    engine: Optional[str] = None
    #: Machine this bug needs; None = the shared :func:`corpus_config`.
    #: The PR-8 bugs target vector paths only reachable on
    #: set-associative / fault-armed machines.
    config_factory: Optional[Callable[[], SystemConfig]] = field(
        default=None, repr=False
    )

    def applies_to(self, engine: str) -> bool:
        """True if this bug corrupts runs of *engine*."""
        return self.engine is None or self.engine == engine

    def make_config(self) -> SystemConfig:
        """The machine configuration this bug must be planted on."""
        factory = self.config_factory or corpus_config
        return factory()

    def on_boundary(self, system, boundary: int) -> None:
        """Fire the corruption when its boundary is reached."""
        if boundary == self.boundary:
            self.corrupt(system)


# ---------------------------------------------------------------------- #
# The corpus workload
# ---------------------------------------------------------------------- #


def corpus_config() -> SystemConfig:
    """The machine the corpus runs on: the paper's 96-entry-TLB MTLB box."""
    return paper_mtlb(96)


def assoc_corpus_config() -> SystemConfig:
    """The way-skew bug's machine: the corpus box with a 2 MB 2-way L1.

    Sized so the 1 MB corpus region fits without evictions: the bug
    corrupts only the vector engine's residency mirror, and evicting a
    mirror-corrupted line would trip the mirror-update bookkeeping
    instead of producing the clean stats divergence the differ must
    localise.
    """
    return dataclasses.replace(
        corpus_config(),
        cache=CacheConfig(size_bytes=2 << 20, associativity=2),
    )


def fault_corpus_config() -> SystemConfig:
    """The clamp-skew bug's machine: the corpus box with one scheduled
    mtlb-parity trigger the run reaches mid-way (the warm boundary sits
    near 1.8k consultations, end of run near 8.7k)."""
    from ..faults import FaultConfig

    return dataclasses.replace(
        corpus_config(),
        faults=FaultConfig(triggers=(("mtlb_parity", 4000),)),
    )


def corpus_trace(seed: int = 1998) -> Trace:
    """Synthetic workload: one remapped 1 MB region, six short segments.

    Small enough that a full lockstep run takes well under a second,
    warm enough that every component the bugs corrupt has live state by
    :data:`WARM_BOUNDARY`.
    """
    rng = np.random.default_rng(seed)
    trace = Trace(f"check-corpus-s{seed}")
    trace.add(MapRegion(REGION_BASE, REGION_SIZE, label="corpus"))
    trace.add(Remap(REGION_BASE, REGION_SIZE))
    for i in range(6):
        vaddrs = REGION_BASE + rng.integers(
            0, REGION_SIZE, size=4000, dtype=np.int64
        )
        writes = rng.random(4000) < 0.3
        trace.add(
            make_segment(f"seg{i}", vaddrs, write_mask=writes, gap=2)
        )
    return trace


# ---------------------------------------------------------------------- #
# Corruptions
# ---------------------------------------------------------------------- #


def _shadow_table(system):
    return system.mmc.shadow_table


def _first_valid_index(table) -> int:
    from ..core.shadow_table import VALID_BIT

    valid = np.nonzero(table._entries & VALID_BIT)[0]
    if not len(valid):
        raise RuntimeError("corpus machine has no valid shadow entries")
    return int(valid[0])


def _first_invalid_index(table) -> int:
    from ..core.shadow_table import VALID_BIT

    invalid = np.nonzero((table._entries & VALID_BIT) == 0)[0]
    return int(invalid[-1])


def _corrupt_shadow_ref_leak(system) -> None:
    table = _shadow_table(system)
    table.set_referenced(_first_invalid_index(table))


def _corrupt_shadow_pfn_dup(system) -> None:
    from ..core.shadow_table import PFN_MASK

    table = _shadow_table(system)
    pfn = int(
        table._entries[_first_valid_index(table)]
    ) & PFN_MASK
    table.set_mapping(_first_invalid_index(table), pfn, valid=True)


def _corrupt_frame_free_leak(system) -> None:
    from ..core.shadow_table import PFN_MASK

    table = _shadow_table(system)
    pfn = int(
        table._entries[_first_valid_index(table)]
    ) & PFN_MASK
    system.kernel.vm.frames.free(pfn)


def _corrupt_cache_dirty_desync(system) -> None:
    cache = system.cache
    invalid = np.nonzero(cache._tags == -1)[0]
    cache._dirty[int(invalid[0])] = 1


def _corrupt_cache_stamp_rewind(system) -> None:
    system.cache.mutation_stamp = 0


def _corrupt_tlb_alias(system) -> None:
    tlb = system.tlb
    entry = tlb.entries()[0]
    # File the entry under a second, wrong key: the per-size table now
    # disagrees with both the entry's own vbase and the entry count.
    tlb._by_size[entry.size][entry.vbase + entry.size] = entry


def _corrupt_mtlb_stale_way(system) -> None:
    mtlb = system.mmc.mtlb
    for way_set in mtlb._sets:
        for way in way_set.values():
            way.pfn ^= 1
            return
    raise RuntimeError("corpus machine has no cached MTLB ways")


def _corrupt_vector_dirty_mark(system) -> None:
    cache = system.cache
    clean = np.nonzero((cache._tags != -1) & (cache._dirty == 0))[0]
    cache._dirty[int(clean[0])] = 1


def _corrupt_vector_stat_skew(system) -> None:
    system.stats.memory_stall_cycles += 1


def _corrupt_vector_tlb_nru(system) -> None:
    entry = system.tlb.entries()[0]
    entry.nru_referenced = not entry.nru_referenced


def _corrupt_assoc_way_skew(system) -> None:
    from ..mem.cache import _INVALID

    cache = system.cache
    if not hasattr(cache, "ensure_mirror"):
        raise RuntimeError(
            "assoc-way-skew needs a set-associative cache "
            "(plant it on assoc_corpus_config())"
        )
    plane = cache.ensure_mirror()
    resident = plane != _INVALID
    if not resident.any():
        raise RuntimeError("corpus machine has no resident cache lines")
    # Bogus-but-unused tag value: every resident line now predicts as a
    # miss (the safe corruption direction — a non-resident line
    # predicting as a hit would break retirement instead of diverging).
    plane[resident] = -9


def _corrupt_trigger_clamp_skew(system) -> None:
    plan = system.fault_plan
    if plan is None:
        raise RuntimeError(
            "trigger-clamp-skew needs an armed fault plan "
            "(plant it on fault_corpus_config())"
        )
    sched = plan._sched
    for site in sched.counts:
        sched.counts[site] += 10_000


CORPUS: List[PlantedBug] = [
    PlantedBug(
        name="shadow-ref-leak",
        kind="sanitize",
        component="shadow_table",
        description="referenced bit set on an unmapped shadow entry "
        "(lost Section 2.5 accounting discipline)",
        corrupt=_corrupt_shadow_ref_leak,
    ),
    PlantedBug(
        name="shadow-pfn-dup",
        kind="sanitize",
        component="shadow_table",
        description="two valid shadow entries name the same real frame",
        corrupt=_corrupt_shadow_pfn_dup,
    ),
    PlantedBug(
        name="frame-free-leak",
        kind="sanitize",
        component="frames",
        description="a frame still mapped by the shadow table is "
        "returned to the free list",
        corrupt=_corrupt_frame_free_leak,
    ),
    PlantedBug(
        name="cache-dirty-desync",
        kind="sanitize",
        component="cache",
        description="dirty bit set on an invalid line (metadata mirror "
        "desynced from line state)",
        corrupt=_corrupt_cache_dirty_desync,
    ),
    PlantedBug(
        name="cache-stamp-rewind",
        kind="sanitize",
        component="cache",
        description="mutation stamp rewound (in-flight vector window "
        "predictions would go stale undetected)",
        corrupt=_corrupt_cache_stamp_rewind,
        # One boundary later than the rest: the rewind is only
        # detectable once a previous boundary recorded a nonzero stamp.
        boundary=WARM_BOUNDARY + 1,
    ),
    PlantedBug(
        name="tlb-alias",
        kind="sanitize",
        component="tlb",
        description="a TLB entry filed under a second, wrong virtual "
        "base (aliased lookup structure)",
        corrupt=_corrupt_tlb_alias,
    ),
    PlantedBug(
        name="mtlb-stale-way",
        kind="sanitize",
        component="mtlb",
        description="a cached MTLB way's pfn no longer matches the "
        "in-DRAM table (missed purge on a control write)",
        corrupt=_corrupt_mtlb_stale_way,
    ),
    PlantedBug(
        name="vector-dirty-mark",
        kind="diff",
        component="cache",
        description="vector engine spuriously dirties a clean line",
        corrupt=_corrupt_vector_dirty_mark,
        engine="vector",
    ),
    PlantedBug(
        name="vector-stat-skew",
        kind="diff",
        component="stats",
        description="vector engine over-charges one memory stall cycle",
        corrupt=_corrupt_vector_stat_skew,
        engine="vector",
    ),
    PlantedBug(
        name="vector-tlb-nru",
        kind="diff",
        component="tlb",
        description="vector engine flips one entry's NRU referenced "
        "bit (future evictions pick different victims)",
        corrupt=_corrupt_vector_tlb_nru,
        engine="vector",
    ),
    PlantedBug(
        name="assoc-way-skew",
        kind="diff",
        component="stats",
        description="set-assoc residency mirror desyncs from the "
        "per-set dicts: resident lines predict as misses, so the "
        "vector engine charges memory stalls the scalar engine never "
        "pays (PR-8 way-match path)",
        corrupt=_corrupt_assoc_way_skew,
        engine="vector",
        config_factory=assoc_corpus_config,
    ),
    PlantedBug(
        name="trigger-clamp-skew",
        kind="diff",
        component="stats",
        description="window-clamp consultation mutates the fault "
        "schedule instead of being a pure read: the scheduled "
        "mtlb-parity trigger is skipped, so the vector run never "
        "injects the fault the scalar run does (PR-8 clamp path)",
        corrupt=_corrupt_trigger_clamp_skew,
        engine="vector",
        config_factory=fault_corpus_config,
    ),
]

_BY_NAME: Dict[str, PlantedBug] = {bug.name: bug for bug in CORPUS}


def get_bug(name: str) -> PlantedBug:
    """Look one corpus bug up by name (used by emitted repro scripts)."""
    return _BY_NAME[name]


# ---------------------------------------------------------------------- #
# Validation
# ---------------------------------------------------------------------- #


@dataclass
class BugOutcome:
    """Did the tooling catch one planted bug, and how."""

    bug: PlantedBug
    caught: bool
    detail: str


def run_sanitized(trace: Trace, config: SystemConfig, bug: PlantedBug):
    """One sanitized run with *bug* armed; returns the System used.

    Raises :class:`~repro.errors.InvariantViolation` when (as expected)
    the sanitizers catch the planted corruption.
    """
    from ..sim.system import System

    system = System(dataclasses.replace(config, sanitize=True))
    boundary = [0]

    def hook(sys_, item) -> None:
        bug.on_boundary(sys_, boundary[0])
        boundary[0] += 1

    system.check_hook = hook
    system.run(trace)
    return system


def validate_bug(
    bug: PlantedBug, trace: Trace, config: SystemConfig
) -> BugOutcome:
    """Check that the right tool catches *bug* on *trace*."""
    if bug.kind == "sanitize":
        try:
            run_sanitized(trace, config, bug)
        except InvariantViolation as violation:
            caught = violation.component == bug.component
            return BugOutcome(bug, caught, str(violation))
        return BugOutcome(bug, False, "no invariant violation raised")
    report = run_lockstep(trace, config, plant=bug)
    if report.divergence is None:
        return BugOutcome(bug, False, "engines stayed identical")
    d = report.divergence
    caught = bug.component in d.components
    return BugOutcome(
        bug,
        caught,
        f"diverged at boundary {d.boundary} ({d.label}) in "
        f"{', '.join(d.components)}",
    )


def validate_corpus(seed: int = 1998) -> List[BugOutcome]:
    """Validate every corpus bug against a fresh seeded workload.

    Each bug runs on the machine it needs (:meth:`PlantedBug.make_config`)
    — the shared corpus box unless the bug pins its own, like the PR-8
    set-assoc and fault-armed vector bugs.
    """
    return [
        validate_bug(bug, corpus_trace(seed), bug.make_config())
        for bug in CORPUS
    ]
