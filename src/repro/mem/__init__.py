"""Memory-system substrate: cache, bus, DRAM and the memory controller.

* :mod:`repro.mem.cache` — 512 KB direct-mapped (or N-way) VIPT writeback
  data cache with 32-byte lines and explicit flush support;
* :mod:`repro.mem.bus` — Runway-style split-transaction bus at a 2:1
  CPU:bus clock ratio;
* :mod:`repro.mem.dram` — open-row DRAM timing;
* :mod:`repro.mem.mmc` — the main memory controller, which hosts the MTLB
  and classifies/retranslates shadow addresses.
"""

from .bus import Bus, BusStats, BusTiming
from .cache import (
    AccessResult,
    CacheStats,
    DirectMappedCache,
    SetAssociativeCache,
    build_cache,
)
from .dram import Dram, DramStats, DramTiming
from .mmc import (
    BadPhysicalAddress,
    FillResult,
    MemoryController,
    MmcStats,
    MmcTiming,
)

__all__ = [
    "Bus",
    "BusStats",
    "BusTiming",
    "AccessResult",
    "CacheStats",
    "DirectMappedCache",
    "SetAssociativeCache",
    "build_cache",
    "Dram",
    "DramStats",
    "DramTiming",
    "BadPhysicalAddress",
    "FillResult",
    "MemoryController",
    "MmcStats",
    "MmcTiming",
]
