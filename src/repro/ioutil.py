"""Durable filesystem primitives shared by the artifact stores.

The result store (:mod:`repro.serve.store`) and the trace store
(:mod:`repro.trace.store`) both need the same write discipline: stage
into a tmp file that is private to this writer, fsync the data, rename
over the final name, fsync the directory.  That ordering is what makes
the atomicity claim real across a crash or power loss — without the
fsync-before-rename, the rename can reach disk before the data blocks,
leaving a truncated "committed" file.

These helpers started life inside ``repro.serve.store`` (PR 7); they
live here so ``repro.trace`` can reuse them without importing the serve
layer.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "fsync_dir", "unique_tmp_path"]


def fsync_dir(directory: Path) -> None:
    """fsync a directory so a rename into it survives power loss.

    Some filesystems don't support opening directories (or fsync on
    them); treat that as best-effort rather than a write failure.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: Per-process tmp-name disambiguator (see :func:`unique_tmp_path`).
_TMP_SEQ = itertools.count()


def unique_tmp_path(path: Path) -> Path:
    """A tmp name unique to this writer, next to *path*.

    A *fixed* tmp name is a write-write hazard: two processes
    committing the same path would open the same tmp file, and the
    second open truncates it mid-write, so the first writer's
    ``os.replace`` can commit the second's partial bytes.  The pid +
    sequence suffix guarantees each writer stages in its own file.
    """
    return path.with_name(
        f"{path.name}.{os.getpid()}.{next(_TMP_SEQ)}.tmp"
    )


def atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Durably write *blob* to *path*: private tmp file, fsync the
    file, rename over, fsync the directory.

    Raises OSError on failure (callers decide whether a read-only
    filesystem is fatal); the tmp file is removed on the way out.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = unique_tmp_path(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    fsync_dir(path.parent)
