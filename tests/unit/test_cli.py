"""Unit tests for the repro-bench CLI (fast commands only)."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.errors import ReferenceBudgetExceeded


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(EXPERIMENTS) <= set(out)

    def test_fig2_runs_and_passes(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "shape checks: all passed" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_quick_flag_accepted(self, capsys):
        assert main(["fig2", "--quick"]) == 0


class TestRobustnessFlags:
    def test_budget_violation_aborts_without_keep_going(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        with pytest.raises(ReferenceBudgetExceeded):
            main(["fig3", "--quick", "--max-refs", "10"])

    def test_keep_going_reports_failure_and_continues(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        status = main(
            ["fig3", "--quick", "--keep-going", "--max-refs", "10"]
        )
        assert status != 0
        err = capsys.readouterr().err
        assert "EXPERIMENT FAILED: fig3" in err
        assert "ReferenceBudgetExceeded" in err


@pytest.mark.faults
class TestQuickSmoke:
    def test_fig3_quick_keep_going_smoke(
        self, monkeypatch, tmp_path, capsys
    ):
        """The documented smoke invocation:
        ``REPRO_BENCH_QUICK=1 repro-bench fig3 --keep-going``."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        status = main(["fig3", "--keep-going"])
        out = capsys.readouterr().out
        # Quick scales are too small for every paper shape check, so a
        # non-zero status is acceptable — the point is that the whole
        # matrix completes and renders rather than crashing.
        assert status in (0, 1)
        assert "Figure 3" in out
        assert "MTLB improvement at the 96-entry base:" in out
        # The matrix finished, so its checkpoint was cleaned up.
        assert not (tmp_path / "checkpoint_fig3.json").exists()
