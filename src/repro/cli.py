"""repro-bench: run the paper's experiments from the command line.

Usage::

    repro-bench list                 # what can be run
    repro-bench fig2                 # Figure 2 partition table
    repro-bench fig3 [--quick]       # the main result matrix
    repro-bench fig4 [--quick]       # em3d MTLB sensitivity (4A + 4B)
    repro-bench init-costs [--quick] # Section 3.3 cost table
    repro-bench reach [--quick]      # 64+MTLB vs 128 equivalence
    repro-bench ablations [--quick]  # A1-A10
    repro-bench multiprog [--quick]  # timed two-process mix (A8)
    repro-bench sensitivity [--quick]# S1/S2
    repro-bench all [--quick]        # everything, in order

``--quick`` uses CI-sized inputs; without it the EXPERIMENTS.md scales
are used (several minutes for fig3).  ``--jobs N`` fans matrix cells
out over N worker processes (default: all cores) and ``--engine
{auto,scalar,vector}`` selects the trace-execution engine; both only
change wall-clock time, never results.  ``--engine both`` (``fig4``
and ``multiprog`` only) times a scalar pass and a vector pass back to
back, writing one perf-baseline key per engine.  ``--store DIR``
attaches the content-addressed result store, so cells already
simulated (under any engine or job count) are served from disk.
``fig3``, ``fig4``, and ``multiprog`` append their wall times to
``BENCH_perf.json``, the perf baseline.

Bad ``--jobs``/``--engine`` combinations are rejected up front — an
``--engine vector`` request is probed against every figure
configuration in the parser, not inside a worker process (since the
PR-8 restriction lift every paper configuration batches, so the probe
guards future cache backends).

Every invocation opens with a banner echoing the active seed, fault
plan, obs state, and the engine the run resolves to (with the
auto-policy reason).  ``fig3`` and ``fig4`` additionally write
standardized ``BENCH_<name>.json`` metrics snapshots into the current
directory — compare two of them with ``repro metrics diff`` (the
``repro`` command also does single-run dumps; DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from . import __version__
from .bench import (
    BenchContext,
    improvement_summary,
    measure_em3d_remap,
    run_all_shadow_ablation,
    run_allocator_ablation,
    run_bit_writeback_ablation,
    run_cache_sensitivity,
    run_check_penalty_ablation,
    run_fig2,
    run_figure3,
    run_figure4,
    run_fragmentation_ablation,
    run_gather_ablation,
    run_handler_sensitivity,
    run_multiprog_ablation,
    run_promotion_ablation,
    run_reach_equivalence,
    run_recoloring_ablation,
    run_stream_buffer_ablation,
)
from .faults import FAULT_SITES, FaultConfig
from .obs import (
    SCHEMA,
    ObsConfig,
    diff_snapshots,
    load_snapshot,
    matrix_snapshot,
    parse_threshold,
    results_snapshot,
    run_snapshot,
    write_snapshot,
)
from .sim.config import (
    SystemConfig,
    figure3_configs,
    figure4_configs,
    paper_base,
    paper_mtlb,
    paper_no_mtlb,
    paper_promotion,
)
from .sim.system import System
from .workloads import PAPER_SUITE

EXPERIMENTS = (
    "fig2", "fig3", "fig4", "init-costs", "reach", "ablations",
    "multiprog", "sensitivity", "trace-store", "backends",
)

#: Experiments that write perf-baseline keys and therefore accept the
#: timed scalar-vs-vector comparison mode ``--engine both``.
TIMED_EXPERIMENTS = ("fig4", "multiprog")


def describe_faults(faults: FaultConfig) -> str:
    """One-line FaultConfig summary for run banners."""
    if not faults.enabled:
        return "disabled"
    parts = [f"seed={faults.seed}"]
    for site in FAULT_SITES:
        rate = faults.rate_of(site)
        if rate > 0.0:
            parts.append(f"{site}={rate:g}")
    if faults.triggers:
        parts.append(f"triggers={len(faults.triggers)}")
    return " ".join(parts)


def print_banner(
    prog: str,
    seed: int,
    config: SystemConfig,
    quick: bool,
    engine: Optional[str] = None,
) -> None:
    """Echo the seed, fault plan, obs state, and resolved engine.

    The engine line reports what the run will actually use — the
    decision ``System.__init__`` makes through
    :func:`~repro.sim.engine.resolve_engine_decision` — together with
    the policy reason, so an ``auto`` fallback is never silent.
    *engine* overrides the config's own field (the ``--engine`` flag);
    ``"both"`` is the timed comparison mode, which runs one pass per
    engine rather than resolving to one.
    """
    obs_state = "enabled" if config.obs.enabled else "disabled"
    if engine == "both":
        engine_note = "both (scalar and vector, timed back to back)"
    else:
        if engine is not None and engine != config.engine:
            config = dataclasses.replace(config, engine=engine)
        probe = System(config)
        engine_note = f"{probe.engine} ({probe.engine_reason})"
    print(
        f"{prog} {__version__} | seed={seed} quick={quick} | "
        f"faults: {describe_faults(config.faults)} | obs: {obs_state} | "
        f"engine: {engine_note}"
    )


def _write_bench_snapshot(name: str, snapshot: dict) -> None:
    """Persist one standardized BENCH_<name>.json baseline in the
    repository root (= the invocation directory)."""
    path = write_snapshot(snapshot, Path(f"BENCH_{name}.json"))
    print(f"\nwrote {path} ({len(snapshot['runs'])} runs)")


def _context_meta(context: BenchContext) -> dict:
    return {
        "seed": context.seed,
        "quick": context.quick,
        "scales": dict(context.scales),
        "version": __version__,
    }


def _write_perf_baseline(
    name: str,
    wall_seconds: float,
    context: BenchContext,
    extra: Optional[dict] = None,
    key: Optional[str] = None,
) -> None:
    """Merge one wall-clock measurement into ``BENCH_perf.json``.

    Runs are keyed ``<name>|engine=<engine>,jobs=<jobs>`` (or the
    explicit *key*) so scalar and vector timings of the same figure
    coexist in one file and can be compared with ``repro metrics
    diff`` (``wall_seconds`` is lower-is-better).  *extra* adds further
    metrics (the trace-store bench records peak RSS and
    time-to-first-cell).  Unlike the per-figure metric snapshots this
    file is merged, not overwritten: it accumulates the perf baseline.
    """
    path = Path("BENCH_perf.json")
    snapshot = None
    if path.exists():
        try:
            snapshot = load_snapshot(path)
        except (OSError, ValueError):
            snapshot = None  # unreadable baseline: start a fresh one
    if snapshot is None:
        snapshot = {"schema": SCHEMA, "label": "perf", "runs": {}}
    if key is None:
        key = (
            f"{name}|engine={context.engine or 'auto'},"
            f"jobs={context.jobs or 1}"
        )
        if context.sanitize:
            key += ",sanitize=1"
    metrics = {"wall_seconds": round(wall_seconds, 3)}
    if extra:
        metrics.update(extra)
    snapshot["runs"][key] = {"metrics": metrics}
    snapshot["meta"] = _context_meta(context)
    write_snapshot(snapshot, path)
    print(f"wrote {path} ({key}: {wall_seconds:.2f}s wall)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (got {value})")
    return value


def _validate_run_flags(parser, args) -> None:
    """Reject bad flag combinations before any worker process spawns.

    ``--engine vector`` is probed against every configuration the
    figures run.  Since the PR-8 restriction lift every paper
    configuration batches (set-associative caches, fault plans, and
    sanitizers included), so the probe is a forward guard for future
    cache backends rather than a live refusal path — a backend the
    engine has no residency mirror for still fails here, not inside a
    shard worker.  ``--engine both`` is the timed scalar-vs-vector
    comparison and only applies to the experiments that write
    perf-baseline keys.
    """
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1 (got {args.jobs})")
    if (
        getattr(args, "engine", None) == "both"
        and args.experiment not in TIMED_EXPERIMENTS
    ):
        parser.error(
            "--engine both times a scalar and a vector pass back to "
            f"back and only applies to {', '.join(TIMED_EXPERIMENTS)}"
        )
    if getattr(args, "engine", None) == "vector":
        from .sim.engine import vector_config_supported

        probes = {"base": paper_base()}
        probes.update(figure3_configs())
        probes.update(figure4_configs())
        for label, config in probes.items():
            ok, why = vector_config_supported(config)
            if not ok:
                parser.error(
                    f"--engine vector cannot batch configuration "
                    f"{label!r}: {why}; use --engine auto (per-config "
                    "fallback to the scalar engine) or --engine scalar"
                )


def _engine_passes(context: BenchContext):
    """Engine passes for a timed experiment: ``--engine both`` yields
    one scalar and one vector pass, anything else a single pass."""
    if context.engine == "both":
        return ("scalar", "vector")
    return (context.engine,)


def _report(title: str, report: str, errors: List[str]) -> int:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    print(report)
    if errors:
        print("\nSHAPE CHECK FAILURES:")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("\nshape checks: all passed")
    return 0


def _run(name: str, context: BenchContext) -> int:
    if name == "fig2":
        report, errors = run_fig2()
        return _report("E1 / Figure 2", report, errors)
    if name == "fig3":
        t0 = time.perf_counter()
        result = run_figure3(context, progress=True)
        wall = time.perf_counter() - t0
        status = _report("E2 / Figure 3", result.report,
                         result.shape_errors)
        print("\nMTLB improvement at the 96-entry base:")
        for w, gain in improvement_summary(
            result.matrix, PAPER_SUITE
        ).items():
            print(f"  {w:12s} {gain:+.1f}%")
        _write_bench_snapshot(
            "figure3",
            matrix_snapshot(
                result.matrix, "figure3", meta=_context_meta(context)
            ),
        )
        _write_perf_baseline("fig3", wall, context)
        return status
    if name == "fig4":
        both = context.engine == "both"
        saved_engine, saved_store = context.engine, context.store
        if both:
            # Time simulation, not trace synthesis or store reads: the
            # two passes must measure the engines, nothing else.
            context.trace("em3d")
            context.store = None
        try:
            for engine in _engine_passes(context):
                context.engine = engine
                t0 = time.perf_counter()
                result = run_figure4(context, progress=True)
                wall = time.perf_counter() - t0
                _write_perf_baseline("fig4", wall, context)
        finally:
            context.engine, context.store = saved_engine, saved_store
        status = _report(
            "E3+E4 / Figure 4",
            result.report_a + "\n\n" + result.report_b,
            result.shape_errors,
        )
        _write_bench_snapshot(
            "figure4",
            results_snapshot(
                result.runs.values(), "figure4",
                meta=_context_meta(context),
            ),
        )
        return status
    if name == "multiprog":
        saved_engine = context.engine
        try:
            for engine in _engine_passes(context):
                context.engine = engine
                result = run_multiprog_ablation(context)
                _write_perf_baseline(
                    "multiprog", result.wall_seconds, context
                )
        finally:
            context.engine = saved_engine
        return _report(
            "E7 / multiprogrammed mix (A8)",
            result.report,
            result.shape_errors,
        )
    if name == "init-costs":
        result = measure_em3d_remap(context)
        return _report("E5 / Section 3.3", result.report,
                       result.shape_errors)
    if name == "reach":
        result = run_reach_equivalence(context, progress=True)
        return _report("E6 / reach equivalence", result.report,
                       result.shape_errors)
    if name == "ablations":
        status = 0
        frag = run_fragmentation_ablation()
        status |= _report("A1 / fragmentation", frag.report,
                          frag.shape_errors)
        alloc = run_allocator_ablation()
        status |= _report("A2 / shadow allocators", alloc.report,
                          alloc.shape_errors)
        check = run_check_penalty_ablation(context)
        status |= _report("A3 / shadow-check penalty", check.report,
                          check.shape_errors)
        promo = run_promotion_ablation(context)
        status |= _report("A4 / online promotion", promo.report,
                          promo.shape_errors)
        stream = run_stream_buffer_ablation(context)
        status |= _report("A5 / MMC stream buffers", stream.report,
                          stream.shape_errors)
        allshadow = run_all_shadow_ablation(context)
        status |= _report("A6 / all-shadow mode", allshadow.report,
                          allshadow.shape_errors)
        recolor = run_recoloring_ablation()
        status |= _report("A7 / page recoloring", recolor.report,
                          recolor.shape_errors)
        multi = run_multiprog_ablation(context)
        status |= _report("A8 / multiprogramming", multi.report,
                          multi.shape_errors)
        bits = run_bit_writeback_ablation(context)
        status |= _report("A9 / accounting-bit write-back", bits.report,
                          bits.shape_errors)
        gathered = run_gather_ablation()
        status |= _report("A10 / page gather", gathered.report,
                          gathered.shape_errors)
        return status
    if name == "sensitivity":
        status = 0
        cache = run_cache_sensitivity(context)
        status |= _report("S1 / cache associativity", cache.report,
                          cache.shape_errors)
        handler = run_handler_sensitivity(context)
        status |= _report("S2 / miss-handler cost", handler.report,
                          handler.shape_errors)
        return status
    if name == "backends":
        from .bench.backends_bench import run_backends_bench

        result = run_backends_bench(context, progress=True)
        _write_bench_snapshot(
            "backends",
            results_snapshot(
                result.runs.values(), "backends",
                meta=_context_meta(context),
            ),
        )
        return _report(
            "B1 / translation backends", result.report,
            result.shape_errors,
        )
    if name == "trace-store":
        from .bench.trace_store_bench import run_trace_store_bench

        result = run_trace_store_bench(context, progress=True)
        for mode, m in result.measurements.items():
            _write_perf_baseline(
                "trace_store",
                m["wall"],
                context,
                extra={
                    "time_to_first_cell_seconds": round(
                        m["first_cell"], 3
                    ),
                    "peak_rss_kb": m["peak_rss_kb"],
                },
                key=f"trace_store|mode={mode}",
            )
        return _report(
            "E8 / trace-store cold-sweep comparison",
            result.report,
            result.shape_errors,
        )
    raise ValueError(f"unknown experiment {name!r}")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "list"),
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized inputs (fast, same shape checks)",
    )
    parser.add_argument(
        "--seed", type=int, default=1998, help="workload RNG seed"
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help=(
            "continue past a failing experiment instead of aborting; "
            "the exit status is still non-zero if anything failed"
        ),
    )
    parser.add_argument(
        "--max-refs", type=int, default=None, metavar="N",
        help=(
            "per-run reference budget: abort any single (workload, "
            "config) run that would simulate more than N references"
        ),
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "worker processes for matrix cells (default: all cores); "
            "1 forces the serial in-process path"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "scalar", "vector", "both"),
        default="auto",
        help=(
            "trace-execution engine for every run (DESIGN.md §10); "
            "engines are bit-identical, vector is the fast one; "
            "'both' (fig4/multiprog) times a scalar and a vector pass "
            "back to back and writes one perf-baseline key per engine"
        ),
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help=(
            "run every cell with the architectural invariant "
            "sanitizers enabled (DESIGN.md §11); read-only checks, "
            "results stay bit-identical"
        ),
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help=(
            "content-addressed result store directory: cells already "
            "simulated (under any engine/jobs setting) are served "
            "from disk instead of re-run"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    _validate_run_flags(parser, args)

    store = None
    if args.store:
        from .serve.store import ResultStore

        store = ResultStore(Path(args.store))

    # --quick forces quick scales; otherwise defer to REPRO_BENCH_QUICK.
    context = BenchContext(
        quick=True if args.quick else None,
        seed=args.seed,
        max_references=args.max_refs,
        jobs=args.jobs if args.jobs is not None else os.cpu_count(),
        engine=args.engine,
        sanitize=args.sanitize,
        store=store,
    )
    # The benches run the presets unchanged, so the default SystemConfig
    # states the active fault plan and obs mode for this invocation.
    print_banner(
        "repro-bench", context.seed, paper_base(), context.quick,
        engine=args.engine,
    )
    todo = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    status = 0
    for name in todo:
        if args.keep_going:
            try:
                status |= _run(name, context)
            except Exception as exc:  # noqa: BLE001 - harness boundary
                print(
                    f"\nEXPERIMENT FAILED: {name}: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
                status |= 1
        else:
            status |= _run(name, context)
    return status


# ====================================================================== #
# The `repro` CLI: metrics dump / diff (DESIGN.md §9)
# ====================================================================== #

#: Config presets `repro metrics dump` can simulate.
DUMP_CONFIGS = {
    "base": lambda tlb: paper_base() if tlb == 96 else paper_no_mtlb(tlb),
    "no-mtlb": paper_no_mtlb,
    "mtlb": paper_mtlb,
    "promotion": paper_promotion,
}


def _metrics_dump(args) -> int:
    config = DUMP_CONFIGS[args.config](args.tlb)
    if args.obs or args.trace_out:
        config = dataclasses.replace(
            config, obs=ObsConfig(enabled=True, ring_capacity=1 << 20)
        )
    print_banner("repro", args.seed, config, args.quick)
    context = BenchContext(
        quick=True if args.quick else None, seed=args.seed
    )
    result = context.run(args.workload, config)
    label = f"{args.workload}|{config.label}"
    snapshot = run_snapshot(
        result,
        label=label,
        meta={
            "seed": args.seed,
            "quick": context.quick,
            "scale": context.scale_of(args.workload),
            "version": __version__,
        },
    )
    if getattr(args, "format", "json") == "prom":
        from .obs import render_prometheus_mapping

        body = render_prometheus_mapping(
            snapshot["runs"][label]["metrics"],
            extra_labels={"run": label, "seed": str(args.seed)},
        )
        if args.output:
            Path(args.output).write_text(body)
            print(f"wrote {args.output}")
        else:
            print(body, end="")
        if args.trace_out:
            path = result.obs.write_chrome_trace(
                args.trace_out, label=label
            )
            print(f"wrote {path} (load it at https://ui.perfetto.dev)")
        return 0
    if args.output:
        path = write_snapshot(snapshot, args.output)
        print(f"wrote {path}")
    else:
        import json as _json

        print(_json.dumps(snapshot, indent=1, sort_keys=True))
    if args.trace_out:
        path = result.obs.write_chrome_trace(
            args.trace_out, label=f"{args.workload}|{config.label}"
        )
        print(f"wrote {path} (load it at https://ui.perfetto.dev)")
    _print_trace_ops()
    return 0


def _print_trace_ops() -> None:
    """Echo trace-store operational counters on stderr.

    Deliberately *outside* the snapshot JSON: the snapshot's run
    metrics are gated bit-for-bit across engines and cold/warm caches,
    while these counters (hits/misses/cache_corrupt/...) describe this
    invocation's cache traffic.  stderr keeps stdout pipeable.
    """
    from .trace.store import store_registry

    ops = {
        name: value
        for name, value in store_registry().collect().items()
        if value
    }
    if ops:
        print(
            "trace store: "
            + " ".join(f"{k}={v:g}" for k, v in sorted(ops.items())),
            file=sys.stderr,
        )


def _strip_backend_suffix(snapshot):
    """Rewrite ``workload|label@backend`` run keys to ``workload|label``.

    Only the config-label half is touched (the ``@backend`` suffix is
    appended by ``SystemConfig.label`` for non-default backends).  Two
    rows collapsing onto one key is an error: a silent overwrite would
    make the diff compare against whichever row sorted last.
    """
    runs = snapshot.get("runs")
    if not isinstance(runs, dict):
        return snapshot
    stripped = {}
    for key, row in runs.items():
        workload, sep, label = key.partition("|")
        if sep and "@" in label:
            key = f"{workload}|{label.split('@', 1)[0]}"
        if key in stripped:
            raise ValueError(
                f"--ignore-backend collapses two runs onto {key!r}; "
                "diff the snapshots without it"
            )
        stripped[key] = row
    out = dict(snapshot)
    out["runs"] = stripped
    return out


def _metrics_diff(args) -> int:
    try:
        threshold = parse_threshold(args.threshold)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        baseline = load_snapshot(args.baseline)
        candidate = load_snapshot(args.candidate)
        if getattr(args, "ignore_backend", False):
            baseline = _strip_backend_suffix(baseline)
            candidate = _strip_backend_suffix(candidate)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = diff_snapshots(baseline, candidate, threshold=threshold)
    print(report.render(show_unchanged=args.verbose))
    if args.require_identical:
        if report.identical:
            print("snapshots are identical")
            return 0
        print(
            "snapshots differ (--require-identical)", file=sys.stderr
        )
        return 1
    return 1 if report.regressions else 0


def _check_diff(args) -> int:
    from .check.corpus import get_bug
    from .check.lockstep import run_lockstep
    from .check.shrink import emit_repro, shrink_trace

    config = DUMP_CONFIGS[args.config](args.tlb)
    plant = get_bug(args.plant) if args.plant else None
    if plant is not None and plant.config_factory is not None:
        # A bug that targets a lifted vector path (set-assoc cache,
        # armed fault plan) only exists on its own machine.
        config = plant.make_config()
        print(
            f"note: bug {plant.name!r} pins its own machine config "
            f"({config.label})"
        )
    print_banner("repro", args.seed, config, args.quick)
    context = BenchContext(
        quick=True if args.quick else None, seed=args.seed
    )
    trace = context.trace(args.workload)
    report = run_lockstep(
        trace, config, plant=plant, workload=args.workload
    )
    print(report.render())
    if report.identical:
        return 0
    if args.shrink:
        print("\nshrinking to a minimal failing window...")

        def failing(t):
            return not run_lockstep(t, config, plant=plant).identical

        shrunk = shrink_trace(trace, failing)
        name = f"diff-{args.workload}" + (
            f"-{args.plant}" if args.plant else ""
        )
        script = emit_repro(
            shrunk, config, args.out, name,
            mode="diff", plant_name=args.plant,
        )
        print(
            f"shrunk to {shrunk.total_refs} reference(s); "
            f"standalone repro: {script}"
        )
    return 1


def _serve_specs(figure: str, seed: int, engine: str, backend: str = "mtlb"):
    """The figure's scenario batch: ``(specs, snapshot_label)``.

    A non-default *backend* reinterprets the figure as that backend's
    TLB-size sweep: the MTLB rows make no sense there (a backend owns
    the whole translation path, DESIGN.md §16), so only the
    conventional columns are swept, with ``ScenarioSpec(backend=...)``
    folding the backend into each config.  The snapshot label gains an
    ``@backend`` suffix so cross-backend snapshots can sit side by side
    in one store and still be compared via
    ``repro metrics diff --ignore-backend``.
    """
    from .api import ScenarioSpec

    fold = None if backend == "mtlb" else backend
    if figure == "fig3":
        if fold is None:
            configs = list(figure3_configs().values())
        else:
            configs = [paper_no_mtlb(e) for e in (64, 96, 128)]
        specs = [
            ScenarioSpec(w, config, seed=seed, engine=engine, backend=fold)
            for w in PAPER_SUITE
            for config in configs
        ]
        label = "figure3"
    else:
        if fold is None:
            configs = list(figure4_configs().values())
        else:
            configs = [paper_no_mtlb(128)]
        specs = [
            ScenarioSpec(
                "em3d", config, seed=seed, engine=engine, backend=fold
            )
            for config in configs
        ]
        label = "figure4"
    if fold is not None:
        label = f"{label}@{fold}"
    return specs, label


def _sweep_policy(args):
    """The SupervisionPolicy the sweep flags ask for (None = defaults)."""
    from .serve import SupervisionPolicy

    overrides = {}
    if getattr(args, "deadline", None) is not None:
        overrides["deadline_seconds"] = args.deadline
    if getattr(args, "retries", None) is not None:
        overrides["max_attempts"] = args.retries
    if not overrides:
        return None
    return SupervisionPolicy(**overrides)


def _serve_sweep(args) -> int:
    """``repro serve sweep``: a figure through the scenario service.

    Scenarios already in the content-addressed store are served from
    disk; the rest are sharded over supervised worker processes
    (deadlines, retry-with-backoff, poison quarantine — DESIGN.md §13).
    The output is the same standardized metrics snapshot
    ``repro-bench`` writes, so a cold and a warm sweep can be compared
    with ``repro metrics diff --require-identical``.

    A first SIGINT/SIGTERM drains in-flight scenarios to the store,
    writes an ``interrupted_sweep.json`` checkpoint, and exits with
    status 75; a second hard-aborts with status 130.  ``--chaos``
    arms deterministic service-layer failure injection (testing only:
    results are still verified bit-identical on commit).

    With ``--daemon URL`` the batch is POSTed to a resident ``repro
    serve daemon`` instead of running a local pool; results stream
    back as they commit and land in the *daemon's* store, bit-identical
    to a local sweep of the same specs.
    """
    from .errors import (
        DaemonProtocolError,
        DaemonUnavailable,
        SpecValidationError,
    )
    from .serve import (
        EXIT_ABORTED,
        EXIT_INTERRUPTED,
        ShutdownGuard,
        SweepClient,
        default_chaos,
    )
    from .serve.supervise import write_interrupt_checkpoint

    chaos = (
        default_chaos(args.chaos) if args.chaos is not None else None
    )
    guard = ShutdownGuard()
    client = SweepClient(
        store=args.store,
        jobs=args.jobs,
        quick=True if args.quick else None,
        seed=args.seed,
        progress=True,
        policy=_sweep_policy(args),
        chaos=chaos,
        shutdown=guard,
        daemon=getattr(args, "daemon", None),
        tenant=getattr(args, "tenant", None),
    )
    context = client.session.context
    print_banner("repro", args.seed, paper_base(), context.quick)
    if client.daemon is not None:
        print(f"scenario daemon: {client.daemon} (tenant {client.tenant})")
    else:
        print(f"result store: {client.store.root}")
    if chaos is not None:
        print(f"chaos: ARMED seed={chaos.seed} (deterministic injection)")
    try:
        specs, label = _serve_specs(
            args.figure, args.seed, args.engine,
            backend=getattr(args, "backend", "mtlb"),
        )
        with guard:
            reports = client.sweep(specs, raise_errors=False)
    except SpecValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (DaemonUnavailable, DaemonProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\nhard abort: in-flight work discarded "
              "(committed results remain in the store)", file=sys.stderr)
        return EXIT_ABORTED

    supervision = client.last_supervision
    if supervision is not None and not supervision.clean:
        print(f"\n{supervision.render()}")
    failed = [report for report in reports if not report.ok]
    snapshot = results_snapshot(
        (report.to_result() for report in reports if report.ok),
        label,
        meta=_context_meta(context),
    )
    out = args.output or f"BENCH_{label}.json"
    write_snapshot(snapshot, out)
    hits = sum(1 for report in reports if report.cache_hit)
    print(
        f"\n{len(reports)} scenario(s): {hits} served from cache "
        f"({client.cache_hit_rate:.0%} hit rate), "
        f"{len(reports) - hits - len(failed)} simulated, "
        f"{len(failed)} failed"
    )
    print(f"wrote {out} ({len(snapshot['runs'])} runs)")
    for report in failed:
        print(
            f"  FAILED {report.spec.label}: "
            f"{type(report.error).__name__}: {report.error}",
            file=sys.stderr,
        )
    if guard.drain_requested and supervision is not None:
        checkpoint = write_interrupt_checkpoint(
            client.store.root,
            supervision,
            [r.fingerprint for r in reports if r.ok and r.fingerprint],
            [r.spec.label for r in failed],
        )
        if checkpoint is not None:
            print(f"drained; checkpoint: {checkpoint}", file=sys.stderr)
        return EXIT_ABORTED if guard.abort_requested else EXIT_INTERRUPTED
    return 1 if failed else 0


def _serve_status(args) -> int:
    """``repro serve status``: result-store inventory."""
    from .serve.store import ResultStore, default_store_root

    root = Path(args.store) if args.store else default_store_root()
    status = ResultStore(root).status()
    width = max(len(key) for key in status)
    for key, value in status.items():
        print(f"{key:{width}s}  {value}")
    return 0


def _serve_daemon(args) -> int:
    """``repro serve daemon``: the resident scenario service.

    One long-lived supervised worker pool serves ScenarioSpec batches
    POSTed by any number of concurrent clients (``repro serve sweep
    --daemon URL``), multiplexed through a priority + weighted-fair
    tenant queue, deduplicated against the store and against work
    already in flight, and streamed back as NDJSON the moment each
    scenario commits.  ``GET /metrics`` exposes Prometheus counters,
    ``GET /healthz`` the liveness gate, ``GET /queue`` the fair-queue
    state (DESIGN.md §14).

    A first SIGTERM/SIGINT drains: in-flight scenarios finish and
    commit, queued waiters get typed error events, the process exits
    0.  A second signal hard-aborts.
    """
    from .serve import EXIT_ABORTED, ScenarioDaemon, ShutdownGuard
    from .serve.daemon import daemon_policy

    guard = ShutdownGuard(progress=lambda m: print(m, flush=True))
    daemon = ScenarioDaemon(
        store=args.store,
        jobs=args.jobs,
        quick=True if args.quick else None,
        seed=args.seed,
        policy=daemon_policy(_sweep_policy(args)),
        shutdown=guard,
        progress_cb=lambda message: print(message, flush=True),
    )
    print_banner(
        "repro", args.seed, paper_base(), daemon.context.quick
    )
    with guard:
        code = daemon.run(host=args.host, port=args.port)
    if guard.abort_requested:
        return EXIT_ABORTED
    return code


def _serve_gc(args) -> int:
    """``repro serve gc``: prune the store's operational litter.

    Removes orphaned ``*.tmp`` write stages, a stale
    ``interrupted_sweep.json`` checkpoint once its sweep was resumed
    (or it aged out), and poison sidecars older than ``--max-age``.
    Committed records and quarantined entries are never touched.
    """
    from .serve.store import ResultStore, default_store_root

    root = Path(args.store) if args.store else default_store_root()
    summary = ResultStore(root).gc(
        max_age_seconds=args.max_age * 86400.0,
        tmp_grace_seconds=args.tmp_grace,
        dry_run=args.dry_run,
    )
    verb = "would remove" if args.dry_run else "removed"
    print(f"store: {summary['root']}")
    print(f"{verb} {summary['tmp_removed']} tmp file(s)")
    print(f"{verb} {summary['checkpoints_removed']} checkpoint(s)")
    print(f"{verb} {summary['poison_removed']} poison sidecar(s)")
    if args.verbose:
        for bucket, paths in sorted(summary["removed"].items()):
            for path in paths:
                print(f"  {bucket}: {path}")
    return 0


def _chaos_soak(args) -> int:
    """``repro chaos soak``: sweeps under injected chaos must converge.

    Runs one clean quick fig3 sweep, then the same sweep under each
    chaos seed with the full fault mix armed (worker kills, stalls,
    commit ENOSPC/EIO, record corruption, slow shards), and asserts the
    final store contents are bit-identical to the clean run minus any
    quarantined poison.  Writes ``BENCH_chaos.json`` with the per-seed
    ``serve.*`` supervision counters so the self-diff gate can track
    them.  Exit 0 only when every seed converges.
    """
    import tempfile

    from .serve import run_soak

    specs, _ = _serve_specs("fig3", args.seed, "auto")
    seeds = list(range(1, args.seeds + 1))
    quick = True if args.quick else None
    print_banner("repro", args.seed, paper_base(), bool(args.quick))
    print(
        f"chaos soak: fig3 x {len(specs)} scenario(s), "
        f"{len(seeds)} chaos seed(s), jobs={args.jobs}"
    )

    def _soak(root: Path):
        return run_soak(
            specs,
            root,
            seeds=seeds,
            jobs=args.jobs,
            quick=quick,
            progress=lambda msg: print(msg, flush=True),
        )

    if args.store:
        report = _soak(Path(args.store))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            report = _soak(Path(tmp))

    print(f"\n{report.render()}")
    snapshot = {
        "schema": SCHEMA,
        "label": "chaos",
        "runs": {
            f"soak|seed={o.seed}": {
                "metrics": {
                    **{k: float(v) for k, v in sorted(o.counters.items())},
                    "bit_identical": float(o.matched == o.entries),
                    "poisoned": float(len(o.poisoned)),
                    "max_kill_overshoot_seconds": round(
                        o.max_kill_overshoot, 3
                    ),
                }
            }
            for o in report.outcomes
        },
        "meta": {"seed": args.seed, "quick": bool(args.quick),
                 "version": __version__},
    }
    out = args.output or "BENCH_chaos.json"
    path = write_snapshot(snapshot, out)
    print(f"wrote {path} ({len(snapshot['runs'])} runs)")
    if not report.ok:
        print("chaos soak: FAILED (stores diverged)", file=sys.stderr)
        return 1
    print("chaos soak: all seeds converged bit-identically")
    return 0


def _trace_store_for(args):
    from .trace.store import TraceStore

    env = os.environ.get("REPRO_TRACE_CACHE")
    cache_dir = Path(args.cache_dir or env or ".trace_cache")
    return cache_dir, TraceStore(cache_dir / "store")


def _trace_ls(args) -> int:
    cache_dir, store = _trace_store_for(args)
    rows = store.ls()
    if not rows:
        print(f"trace store {store.root} is empty")
        return 0
    print(f"{'address':40s} {'workload':12s} {'scale':>8s} "
          f"{'seed':>6s} {'refs':>12s} {'chunks':>7s} {'MB':>8s} raw")
    total_bytes = 0
    for row in rows:
        if "error" in row:
            print(f"{row['address']:40s} CORRUPT: {row['error']}")
            continue
        total_bytes += row["raw_bytes"]
        print(
            f"{row['address']:40s} {row['workload']:12s} "
            f"{row['scale']:>8g} {row['seed']:>6d} {row['refs']:>12,d} "
            f"{row['chunks']:>7d} {row['raw_bytes'] / 1e6:>8.1f} "
            f"{'yes' if row['raw_cached'] else 'no'}"
        )
    print(f"\n{len(rows)} entr{'y' if len(rows) == 1 else 'ies'}, "
          f"{total_bytes / 1e6:.1f} MB raw")
    return 0


def _trace_gc(args) -> int:
    _, store = _trace_store_for(args)
    summary = store.gc(drop_raw=args.drop_raw)
    print(
        f"removed {summary['tmp_dirs']} staging dir(s), "
        f"{summary['stale_locks']} stale lock(s), "
        f"{summary['raw_dropped']} raw materialisation(s); "
        f"{summary['quarantined']} quarantined entr(y/ies) on disk"
    )
    return 0


def _trace_migrate(args) -> int:
    cache_dir, store = _trace_store_for(args)
    report = store.migrate_legacy_dir(cache_dir, remove=args.remove)
    for name in report["migrated"]:
        print(f"migrated  {name}")
    for name in report["corrupt"]:
        print(f"corrupt   {name} (skipped)")
    if args.verbose:
        for name in report["skipped"]:
            print(f"skipped   {name}")
    print(
        f"\n{len(report['migrated'])} migrated, "
        f"{len(report['skipped'])} skipped, "
        f"{len(report['corrupt'])} corrupt"
    )
    return 1 if report["corrupt"] else 0


def _check_corpus(args) -> int:
    from .check.corpus import validate_corpus

    outcomes = validate_corpus(args.seed)
    escaped = [o for o in outcomes if not o.caught]
    width = max(len(o.bug.name) for o in outcomes)
    for o in outcomes:
        status = "caught" if o.caught else "ESCAPED"
        print(f"{o.bug.name:{width}s}  [{o.bug.kind:8s}]  {status:8s}"
              f"  {o.detail}")
    print(
        f"\n{len(outcomes) - len(escaped)}/{len(outcomes)} planted "
        "bugs caught"
    )
    return 1 if escaped else 0


def repro_main(argv=None) -> int:
    """Entry point for the `repro` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Observability front door: dump standardized metrics "
            "snapshots and diff them for regressions (DESIGN.md §9)."
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    metrics = sub.add_parser(
        "metrics", help="metrics snapshots and regression diffs"
    )
    msub = metrics.add_subparsers(dest="metrics_command", required=True)

    dump = msub.add_parser(
        "dump",
        help="simulate one run and emit its metrics snapshot JSON",
    )
    dump.add_argument(
        "--workload", default="em3d", choices=sorted(PAPER_SUITE)
    )
    dump.add_argument(
        "--config", default="mtlb", choices=sorted(DUMP_CONFIGS)
    )
    dump.add_argument("--tlb", type=int, default=96, metavar="ENTRIES")
    dump.add_argument("--seed", type=int, default=1998)
    dump.add_argument(
        "--quick", action="store_true", help="CI-sized input scale"
    )
    dump.add_argument(
        "--obs", action="store_true",
        help="enable event tracing + phase attribution for this run",
    )
    dump.add_argument(
        "-o", "--output", metavar="FILE",
        help="write the snapshot here instead of stdout",
    )
    dump.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help=(
            "output format: the standardized snapshot JSON (default) "
            "or Prometheus text format 0.0.4 (gauges, one series per "
            "metric) for scrape-side ingestion"
        ),
    )
    dump.add_argument(
        "--trace-out", metavar="FILE",
        help="also write a Perfetto-loadable Chrome trace (implies --obs)",
    )
    dump.set_defaults(func=_metrics_dump)

    diff = msub.add_parser(
        "diff",
        help=(
            "compare two snapshots; exits non-zero when any metric "
            "regresses past the threshold"
        ),
    )
    diff.add_argument("baseline", help="baseline snapshot JSON")
    diff.add_argument("candidate", help="candidate snapshot JSON")
    diff.add_argument(
        "--threshold", default="2%",
        help="relative regression threshold (e.g. 2%% or 0.02)",
    )
    diff.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list unchanged metrics",
    )
    diff.add_argument(
        "--require-identical", action="store_true",
        help=(
            "exit non-zero on ANY metric delta or run-set mismatch, "
            "not just threshold regressions (engine-equivalence gate)"
        ),
    )
    diff.add_argument(
        "--ignore-backend", action="store_true",
        help=(
            "strip @backend suffixes from run labels before comparing, "
            "so e.g. a coalesced sweep lines up against the "
            "conventional baseline rows it shares configs with"
        ),
    )
    diff.set_defaults(func=_metrics_diff)

    check = sub.add_parser(
        "check",
        help=(
            "correctness tooling: engine lockstep diffs and the "
            "planted-bug corpus (DESIGN.md §11)"
        ),
    )
    csub = check.add_subparsers(dest="check_command", required=True)

    cdiff = csub.add_parser(
        "diff",
        help=(
            "run one workload under both engines in lockstep and "
            "report the first state divergence"
        ),
    )
    cdiff.add_argument("workload", choices=sorted(PAPER_SUITE))
    cdiff.add_argument(
        "--config", default="mtlb", choices=sorted(DUMP_CONFIGS)
    )
    cdiff.add_argument("--tlb", type=int, default=96, metavar="ENTRIES")
    cdiff.add_argument("--seed", type=int, default=1998)
    cdiff.add_argument(
        "--quick", action="store_true", help="CI-sized input scale"
    )
    cdiff.add_argument(
        "--plant", metavar="BUG", default=None,
        help=(
            "arm one named corpus bug (repro.check.corpus) to "
            "demonstrate/debug the harness on a known divergence"
        ),
    )
    cdiff.add_argument(
        "--shrink", action="store_true",
        help=(
            "on divergence, bisect the trace to a minimal failing "
            "window and emit a standalone repro script"
        ),
    )
    cdiff.add_argument(
        "--out", metavar="DIR", default="check_repros",
        help="directory for emitted repro files (with --shrink)",
    )
    cdiff.set_defaults(func=_check_diff)

    ccorpus = csub.add_parser(
        "corpus",
        help=(
            "validate the planted-bug corpus: every bug must be "
            "caught by the sanitizers or the lockstep harness"
        ),
    )
    ccorpus.add_argument("--seed", type=int, default=1998)
    ccorpus.set_defaults(func=_check_corpus)

    serve = sub.add_parser(
        "serve",
        help=(
            "scenario service: store-deduplicating scenario sweeps "
            "and result-store inventory (DESIGN.md §12)"
        ),
    )
    ssub = serve.add_subparsers(dest="serve_command", required=True)

    sweep = ssub.add_parser(
        "sweep",
        help=(
            "run a figure's scenario batch through the sharded "
            "scheduler; scenarios already in the result store are "
            "served from disk"
        ),
    )
    sweep.add_argument(
        "figure", choices=("fig3", "fig4"),
        help="which figure's scenario batch to sweep",
    )
    sweep.add_argument(
        "--quick", action="store_true", help="CI-sized input scales"
    )
    sweep.add_argument("--seed", type=int, default=1998)
    sweep.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="shard worker processes (default: serial in-process)",
    )
    sweep.add_argument(
        "--engine", choices=("auto", "scalar", "vector"), default="auto",
        help=(
            "trace-execution engine; engine choice never changes "
            "results, so store entries are engine-interchangeable"
        ),
    )
    sweep.add_argument(
        "--backend", metavar="NAME", default="mtlb",
        help=(
            "translation backend to sweep (repro.core.backends "
            "registry; default mtlb).  Non-default backends sweep the "
            "figure's conventional TLB sizes only and suffix the "
            "snapshot label with @NAME; an unregistered name fails "
            "fast with the registered list"
        ),
    )
    sweep.add_argument(
        "--store", metavar="DIR", default=None,
        help=(
            "result store directory (default: $REPRO_RESULT_STORE "
            "or .result_store)"
        ),
    )
    sweep.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="metrics snapshot path (default: BENCH_<figure>.json)",
    )
    sweep.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "per-scenario wall-clock deadline; a hung worker is "
            "hard-killed past deadline+grace and the scenario retried"
        ),
    )
    sweep.add_argument(
        "--retries", type=_positive_int, default=None, metavar="N",
        help=(
            "max attempts per scenario before it is quarantined as "
            "poison (default: supervision policy default)"
        ),
    )
    sweep.add_argument(
        "--chaos", type=int, default=None, nargs="?", const=2024,
        metavar="SEED",
        help=(
            "arm deterministic service-layer failure injection with "
            "this seed (testing the supervision layer; commits are "
            "still read-back verified)"
        ),
    )
    sweep.add_argument(
        "--daemon", metavar="URL", default=None,
        help=(
            "submit the batch to a resident scenario daemon at this "
            "base URL (e.g. http://127.0.0.1:8765) instead of running "
            "a local pool; results land in the daemon's store"
        ),
    )
    sweep.add_argument(
        "--tenant", metavar="NAME", default=None,
        help=(
            "tenant identity for the daemon's weighted-fair queue "
            "(default: client-<pid>)"
        ),
    )
    sweep.set_defaults(func=_serve_sweep)

    daemon = ssub.add_parser(
        "daemon",
        help=(
            "run the resident scenario service: many clients, one "
            "warm supervised pool, fair-queued, store-deduplicated, "
            "NDJSON-streamed, /metrics-instrumented (DESIGN.md §14)"
        ),
    )
    daemon.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    daemon.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (default 8765; 0 picks an ephemeral port)",
    )
    daemon.add_argument(
        "--jobs", type=_positive_int, default=2, metavar="N",
        help="supervised worker processes in the pool (default 2)",
    )
    daemon.add_argument(
        "--quick", action="store_true",
        help=(
            "CI-sized input scales; the daemon's context governs "
            "scales and fingerprints for every client"
        ),
    )
    daemon.add_argument("--seed", type=int, default=1998)
    daemon.add_argument(
        "--store", metavar="DIR", default=None,
        help=(
            "result store directory (default: $REPRO_RESULT_STORE "
            "or .result_store)"
        ),
    )
    daemon.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-scenario wall-clock deadline (default: policy default)",
    )
    daemon.add_argument(
        "--retries", type=_positive_int, default=None, metavar="N",
        help="max attempts per scenario (default: policy default)",
    )
    daemon.set_defaults(func=_serve_daemon)

    gc = ssub.add_parser(
        "gc",
        help=(
            "prune store litter: orphaned *.tmp stages, a stale "
            "interrupted-sweep checkpoint, old poison sidecars "
            "(committed records are never touched)"
        ),
    )
    gc.add_argument(
        "--store", metavar="DIR", default=None,
        help=(
            "result store directory (default: $REPRO_RESULT_STORE "
            "or .result_store)"
        ),
    )
    gc.add_argument(
        "--max-age", type=float, default=7.0, metavar="DAYS",
        help=(
            "age past which poison sidecars and an unresumed "
            "interrupt checkpoint are pruned (default 7 days)"
        ),
    )
    gc.add_argument(
        "--tmp-grace", type=float, default=900.0, metavar="SECONDS",
        help=(
            "age past which a *.tmp write stage is considered "
            "orphaned (default 900s; live stages exist for millis)"
        ),
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting",
    )
    gc.add_argument(
        "-v", "--verbose", action="store_true",
        help="list each removed path",
    )
    gc.set_defaults(func=_serve_gc)

    sstatus = ssub.add_parser(
        "status", help="result-store inventory (entries, bytes, quarantine)"
    )
    sstatus.add_argument(
        "--store", metavar="DIR", default=None,
        help=(
            "result store directory (default: $REPRO_RESULT_STORE "
            "or .result_store)"
        ),
    )
    sstatus.set_defaults(func=_serve_status)

    chaos = sub.add_parser(
        "chaos",
        help=(
            "service-layer fault injection: soak the supervised sweep "
            "path under deterministic chaos (DESIGN.md §13)"
        ),
    )
    chsub = chaos.add_subparsers(dest="chaos_command", required=True)

    soak = chsub.add_parser(
        "soak",
        help=(
            "run a fig3 sweep clean, then under N chaos seeds, and "
            "assert the stores converge bit-identically (minus "
            "quarantined poison)"
        ),
    )
    soak.add_argument(
        "--quick", action="store_true", help="CI-sized input scales"
    )
    soak.add_argument(
        "--seeds", type=_positive_int, default=3, metavar="N",
        help="number of chaos seeds to soak (seeds 1..N; default 3)",
    )
    soak.add_argument(
        "--jobs", type=_positive_int, default=2, metavar="N",
        help="shard worker processes per sweep (default 2)",
    )
    soak.add_argument("--seed", type=int, default=1998,
                      help="workload RNG seed")
    soak.add_argument(
        "--store", metavar="DIR", default=None,
        help=(
            "root for the soak's clean/chaos stores (default: a "
            "temporary directory, removed afterwards)"
        ),
    )
    soak.add_argument(
        "-o", "--output", metavar="FILE", default=None,
        help="counters snapshot path (default: BENCH_chaos.json)",
    )
    soak.set_defaults(func=_chaos_soak)

    trace = sub.add_parser(
        "trace",
        help=(
            "trace-store maintenance: inventory, garbage collection, "
            "and legacy .npz migration (DESIGN.md §15)"
        ),
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    def _trace_cache_arg(p):
        p.add_argument(
            "--cache-dir", metavar="DIR", default=None,
            help=(
                "trace cache directory (default: $REPRO_TRACE_CACHE "
                "or .trace_cache); the store lives in its store/ "
                "subdirectory"
            ),
        )

    tls = tsub.add_parser(
        "ls", help="list store entries (identity, refs, chunks, bytes)"
    )
    _trace_cache_arg(tls)
    tls.set_defaults(func=_trace_ls)

    tgc = tsub.add_parser(
        "gc",
        help=(
            "prune orphaned staging dirs and stale single-flight "
            "locks; optionally drop regenerable raw materialisations"
        ),
    )
    _trace_cache_arg(tgc)
    tgc.add_argument(
        "--drop-raw", action="store_true",
        help=(
            "also delete decompressed cols.raw files (rebuilt on "
            "next load; compressed chunks are never touched)"
        ),
    )
    tgc.set_defaults(func=_trace_gc)

    tmig = tsub.add_parser(
        "migrate",
        help=(
            "import legacy per-file .npz traces into the store "
            "(skips %%g-rounded scale keys that cannot round-trip)"
        ),
    )
    _trace_cache_arg(tmig)
    tmig.add_argument(
        "--remove", action="store_true",
        help="delete each legacy file after successful import",
    )
    tmig.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list skipped (already-imported) files",
    )
    tmig.set_defaults(func=_trace_migrate)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
