"""A8 — superpages under multiprogramming.

An untagged CPU TLB is flushed on every context switch; re-faulting the
working set costs hundreds of base-page refills per quantum on a
conventional system versus a handful of superpage refills with the MTLB,
whose physically addressed state also survives the switch.
"""

from repro.bench import run_multiprog_ablation


def test_multiprog_ablation(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_multiprog_ablation(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
