#!/usr/bin/env python3
"""Deciding which regions to remap: the superpage advisor.

The paper's problem (ii): superpages are only economical for some
regions.  This example profiles the compress95 trace — page working set,
predicted TLB miss-rate curve, per-region miss attribution — and asks
the advisor which of the program's four regions repay a remap().  It
then validates the advice by actually simulating with superpages on.

Run:  python examples/superpage_advisor.py
"""

from repro.analysis import advise, page_reuse_profile, working_set_series
from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.system import System
from repro.workloads import build_workload

REGION_NAMES = {
    0x0200_4000: "hash+code tables",
    0x0300_4000: "original buffer",
    0x0400_0000: "compressed buffer",
    0x0500_4000: "uncompressed buffer",
}


def main():
    trace = build_workload("compress95", scale=0.1)
    print(f"profiling {trace.total_refs:,} references...\n")

    points = working_set_series(trace, window_instructions=500_000)
    peak = max(p.pages for p in points)
    print(f"page working set: peak {peak} pages per 0.5M-instruction "
          f"window (a 96-entry TLB reaches 96 pages)\n")

    profile = page_reuse_profile(trace, max_refs=500_000)
    print("predicted TLB miss rate by size (Mattson, page granularity):")
    for size, rate in profile.miss_curve([64, 96, 128, 256]).items():
        print(f"  {size:>4} entries: {100 * rate:5.2f}%")
    print()

    print("advisor verdicts (96-entry TLB):")
    for item in advise(trace, tlb_entries=96, max_refs=500_000):
        name = REGION_NAMES.get(item.base, f"{item.base:#010x}")
        verdict = "REMAP" if item.recommended else "leave"
        print(f"  {name:20s} {item.pages:4d} pages  "
              f"~{item.predicted_misses:>7,} misses  "
              f"save ~{item.predicted_saving:>9,} vs "
              f"cost {item.remap_cost:>9,}  -> {verdict}")

    print("\nvalidating: simulate without and with superpages...")
    base = System(paper_no_mtlb(96)).run(trace)
    fast = System(paper_mtlb(96)).run(trace)
    print(f"  measured TLB miss cycles: {base.stats.tlb_miss_cycles:,} "
          f"-> {fast.stats.tlb_miss_cycles:,}")
    print(f"  runtime: {base.total_cycles / fast.total_cycles:.3f}x")


if __name__ == "__main__":
    main()
