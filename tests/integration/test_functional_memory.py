"""Functional data-integrity tests through the full translation path.

Values stored through CPU TLB -> (shadow) physical -> MTLB -> real frame
must read back identically before a remap, after a remap to shadow
superpages, and after remapping back — the translation mechanics must
never change *where data lives*, only how it is named.
"""

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE

REGION = 0x0200_0000
SIZE = 64 << 10


@pytest.fixture
def machine(mtlb_system):
    process = mtlb_system.kernel.create_process("functest")
    mtlb_system.kernel.vm.map_region(process, REGION, SIZE)
    return mtlb_system, process


def _pattern(offset):
    return 0xABCD_0000 + offset


def _write_pattern(system, process):
    for offset in range(0, SIZE, 1024):
        system.store_word(process, REGION + offset, _pattern(offset))


def _check_pattern(system, process):
    for offset in range(0, SIZE, 1024):
        assert system.load_word(process, REGION + offset) == _pattern(offset)


class TestFunctionalIntegrity:
    def test_base_page_store_load(self, machine):
        system, process = machine
        _write_pattern(system, process)
        _check_pattern(system, process)

    def test_data_survives_remap(self, machine):
        system, process = machine
        _write_pattern(system, process)
        system.kernel.vm.remap_to_shadow(process, REGION, SIZE)
        assert process.page_table.lookup(REGION).is_superpage
        _check_pattern(system, process)

    def test_data_survives_remap_back(self, machine):
        system, process = machine
        _write_pattern(system, process)
        system.kernel.vm.remap_to_shadow(process, REGION, SIZE)
        # Mutate through the shadow path, then tear back down.
        system.store_word(process, REGION + 2048, 0x5EED)
        system.kernel.vm.remap_back(process, REGION)
        assert not process.page_table.lookup(REGION).is_superpage
        assert system.load_word(process, REGION + 2048) == 0x5EED
        assert system.load_word(process, REGION) == _pattern(0)

    def test_unwritten_reads_are_empty(self, machine):
        system, process = machine
        assert system.load_word(process, REGION + 8) is None

    def test_two_regions_do_not_alias(self, machine):
        system, process = machine
        other = 0x0300_0000
        system.kernel.vm.map_region(process, other, SIZE)
        system.kernel.vm.remap_to_shadow(process, REGION, SIZE)
        system.kernel.vm.remap_to_shadow(process, other, SIZE)
        system.store_word(process, REGION, 1)
        system.store_word(process, other, 2)
        assert system.load_word(process, REGION) == 1
        assert system.load_word(process, other) == 2

    def test_misaligned_functional_access_rejected(self, machine):
        system, process = machine
        with pytest.raises(ValueError):
            system.store_word(process, REGION + 3, 1)


class TestPagingRoundtrip:
    def test_values_survive_page_out_and_in(self, machine):
        system, process = machine
        system.kernel.vm.remap_to_shadow(process, REGION, SIZE)
        _write_pattern(system, process)
        mapping = process.page_table.lookup(REGION)
        record = system.kernel.vm.superpage_record(mapping.pbase)

        victim_page = 3
        old_pfn = record.pfns[victim_page]
        system.kernel.pager.page_out(record, victim_page)
        # Occupy the old frame so page-in must relocate the data.
        stolen = []
        while True:
            pfn = system.kernel.frames.allocate()
            stolen.append(pfn)
            if pfn == old_pfn:
                break
        system.kernel.pager.page_in(record.first_shadow_index + victim_page)
        assert record.pfns[victim_page] != old_pfn
        _check_pattern(system, process)

    def test_faulting_access_pages_in_transparently(self, machine):
        system, process = machine
        system.kernel.vm.remap_to_shadow(process, REGION, SIZE)
        offset = 5 * BASE_PAGE_SIZE + 64
        system.store_word(process, REGION + offset, 0x1234)
        mapping = process.page_table.lookup(REGION)
        record = system.kernel.vm.superpage_record(mapping.pbase)
        system.kernel.pager.page_out(record, 5)
        # A functional load hits the invalid mapping, faults, and the
        # kernel pages the single base page back in.
        assert system.load_word(process, REGION + offset) == 0x1234
        assert system.kernel.pager.stats.pages_in == 1
