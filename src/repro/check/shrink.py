"""Trace shrinker: bisect a failing reference stream to a minimal window.

Given a trace and a predicate ("this trace still reproduces the
divergence / sanitizer failure"), the shrinker produces the smallest
trace it can that still fails, in three passes:

1. **prefix bisection** — binary search for the shortest item prefix
   that still fails (everything after the first failure is dead weight);
2. **item drop** — greedily remove earlier whole items (segments and
   events) that the failure does not actually depend on;
3. **reference trim** — for each surviving segment, repeatedly cut
   halves and quarters from both ends while the trace keeps failing,
   until no cut of ≥1 reference survives.

The result is typically a handful of references (the planted-bug corpus
shrinks to single-digit windows); the ≤1000-reference target of
DESIGN.md §11 is a ceiling, not a goal.

:func:`emit_repro` writes the shrunken trace, its configuration, and a
standalone runner script, so a failure can be handed around as three
files and replayed with ``python <name>.py``.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Callable, List, Optional

from ..trace.trace import Segment, Trace

Predicate = Callable[[Trace], bool]


def _guard(failing: Predicate) -> Predicate:
    """Delta-debugging guard: a candidate that *crashes* is not a repro.

    Cutting items can produce structurally invalid traces (a Remap with
    no prior MapRegion, references into an unmapped region).  Those
    raise arbitrary simulation errors rather than reproducing the
    failure under investigation; per standard delta debugging they are
    "unresolved" and treated as passing, so the shrinker keeps the item
    the candidate removed.
    """

    def guarded(trace: Trace) -> bool:
        try:
            return failing(trace)
        except Exception:
            return False

    return guarded


def _subtrace(trace: Trace, items: List) -> Trace:
    return Trace(
        name=trace.name,
        items=items,
        text_base=trace.text_base,
        text_size=trace.text_size,
    )


def _slice_segment(seg: Segment, lo: int, hi: int) -> Segment:
    return Segment(
        f"{seg.label}[{lo}:{hi}]",
        seg.ops[lo:hi],
        seg.vaddrs[lo:hi],
        seg.gaps[lo:hi],
        text_pages=seg.text_pages,
    )


def _shrink_prefix(trace: Trace, failing: Predicate) -> Trace:
    """Binary search the shortest failing item prefix."""
    items = trace.items
    lo, hi = 1, len(items)  # invariant: prefix of hi fails
    while lo < hi:
        mid = (lo + hi) // 2
        if failing(_subtrace(trace, items[:mid])):
            hi = mid
        else:
            lo = mid + 1
    return _subtrace(trace, items[:hi])


def _drop_items(trace: Trace, failing: Predicate) -> Trace:
    """Greedily remove whole items the failure does not depend on."""
    items = list(trace.items)
    i = 0
    while i < len(items):
        candidate = items[:i] + items[i + 1 :]
        if candidate and failing(_subtrace(trace, candidate)):
            items = candidate
        else:
            i += 1
    return _subtrace(trace, items)


def _trim_segments(trace: Trace, failing: Predicate) -> Trace:
    """Cut references off both ends of every segment, largest cuts first."""
    items = list(trace.items)
    for i, item in enumerate(items):
        if not isinstance(item, Segment):
            continue
        # Work in absolute offsets into the original segment so the
        # label stays a single [lo:hi] window.
        base, lo, hi = item, 0, item.refs
        changed = True
        while changed and hi - lo > 1:
            changed = False
            cut = (hi - lo) // 2
            while cut >= 1:
                # Try dropping the tail, then the head.
                for nlo, nhi in ((lo, hi - cut), (lo + cut, hi)):
                    if nhi - nlo < 1:
                        continue
                    candidate = list(items)
                    candidate[i] = _slice_segment(base, nlo, nhi)
                    if failing(_subtrace(trace, candidate)):
                        lo, hi = nlo, nhi
                        items[i] = candidate[i]
                        changed = True
                        break
                else:
                    cut //= 2
                    continue
                break
    return _subtrace(trace, items)


def shrink_trace(
    trace: Trace,
    failing: Predicate,
    target_refs: int = 1000,
) -> Trace:
    """Return a minimal subtrace of *trace* that still satisfies *failing*.

    Raises ``ValueError`` if the input trace does not fail to begin
    with.  *target_refs* is only a sanity check: the shrinker always
    minimizes as far as it can, and warns in the returned trace's name
    if it somehow could not get under the target.
    """
    if not failing(trace):
        raise ValueError(
            "shrink_trace needs a failing trace to start from"
        )
    guarded = _guard(failing)
    shrunk = _shrink_prefix(trace, guarded)
    shrunk = _drop_items(shrunk, guarded)
    shrunk = _trim_segments(shrunk, guarded)
    suffix = "-shrunk"
    if shrunk.total_refs > target_refs:  # pragma: no cover - safety net
        suffix = f"-shrunk-OVER-TARGET-{target_refs}"
    shrunk.name = f"{trace.name}{suffix}"
    return shrunk


_REPRO_TEMPLATE = '''\
#!/usr/bin/env python
"""Standalone repro for a {mode} failure, emitted by repro.check.

Shrunken from workload {workload!r}; replays {refs} references.
Exits 1 while the failure still reproduces, 0 once it is fixed.
"""

import pickle
import sys
from pathlib import Path

HERE = Path(__file__).parent

from repro.trace.io import load_trace

trace = load_trace(HERE / {trace_file!r})
config = pickle.loads((HERE / {config_file!r}).read_bytes())

plant = None
if {plant_name!r}:
    from repro.check.corpus import get_bug

    plant = get_bug({plant_name!r})

if {mode!r} == "diff":
    from repro.check.lockstep import run_lockstep

    report = run_lockstep(trace, config, plant=plant)
    print(report.render())
    sys.exit(0 if report.identical else 1)
else:
    import dataclasses

    from repro.errors import InvariantViolation
    from repro.sim.system import System

    system = System(dataclasses.replace(config, sanitize=True))
    if plant is not None:
        counter = [0]

        def hook(sys_, item):
            plant.on_boundary(sys_, counter[0])
            counter[0] += 1

        system.check_hook = hook
    try:
        system.run(trace)
    except InvariantViolation as violation:
        print(f"still failing: {{violation}}")
        sys.exit(1)
    print("no invariant violation: failure no longer reproduces")
    sys.exit(0)
'''


def emit_repro(
    trace: Trace,
    config,
    out_dir,
    name: str,
    mode: str = "diff",
    plant_name: Optional[str] = None,
    store=None,
) -> Path:
    """Write ``<name>.npz`` + ``<name>.config.pkl`` + ``<name>.py``.

    *mode* is ``"diff"`` (replay through the lockstep harness) or
    ``"sanitize"`` (replay one sanitized run); *plant_name* names a
    corpus bug to re-arm, for failures that only exist under a planted
    corruption.  Returns the path of the runner script.

    The ``.npz`` stays the portable hand-off format (one
    self-contained file; written atomically since PR 9).  With *store*
    (a :class:`~repro.trace.store.TraceStore`) the shrunk trace is
    *also* registered under the synthetic identity
    ``shrink/<name>`` — content-addressed, so re-shrinking the same
    failure dedupes instead of piling up copies, and ``repro trace
    ls`` inventories repro artifacts alongside cached workloads.  The
    address is recorded in ``<name>.address``.
    """
    if mode not in ("diff", "sanitize"):
        raise ValueError(f"mode must be 'diff' or 'sanitize', not {mode!r}")
    from ..trace.io import save_trace

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_file = f"{name}.npz"
    config_file = f"{name}.config.pkl"
    save_trace(trace, out / trace_file)
    if store is not None:
        address = store.put(trace, f"shrink/{name}", 1.0, 0)
        (out / f"{name}.address").write_text(address + "\n")
    (out / config_file).write_bytes(pickle.dumps(config))
    script = out / f"{name}.py"
    script.write_text(
        _REPRO_TEMPLATE.format(
            mode=mode,
            workload=trace.name,
            refs=trace.total_refs,
            trace_file=trace_file,
            config_file=config_file,
            plant_name=plant_name or "",
        )
    )
    return script
