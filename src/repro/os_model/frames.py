"""Physical page-frame allocation.

The point of shadow-backed superpages is that the OS does *not* need
physically contiguous, aligned frames.  To make that benefit measurable,
this allocator can hand out frames in deliberately scattered order
(as happens naturally on a system that has been paging for a while), and
it also implements the contiguous aligned allocation a *conventional*
superpage system would need — which fails under fragmentation, giving the
baseline for ablation A1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Set

from ..core.addrspace import BASE_PAGE_SHIFT, BASE_PAGE_SIZE


class OutOfMemory(Exception):
    """No free physical frames satisfy the request."""


@dataclass
class FrameStats:
    """Allocation counters."""

    allocated: int = 0
    freed: int = 0
    contiguous_requests: int = 0
    contiguous_failures: int = 0


class FrameAllocator:
    """Allocator over the user-visible portion of installed DRAM.

    *fragmentation* controls the order frames are handed out in:

    * ``"none"`` — ascending order (a freshly booted machine);
    * ``"shuffled"`` — a seeded random permutation (a machine that has
      been running for a while; the common case the paper targets);
    * ``"aged"`` — like shuffled, but a random half of all frames is
      already in use by other processes, so long aligned runs of free
      frames are vanishingly rare;
    * ``"checkerboard"`` — alternate frames are pre-reserved, so no two
      free frames are ever adjacent (worst case for conventional
      superpages, harmless for shadow-backed ones).
    """

    def __init__(
        self,
        first_frame: int,
        frame_count: int,
        fragmentation: str = "shuffled",
        seed: int = 1998,
    ) -> None:
        if frame_count <= 0:
            raise ValueError("frame_count must be positive")
        self.first_frame = first_frame
        self.frame_count = frame_count
        self.fragmentation = fragmentation
        frames = list(range(first_frame, first_frame + frame_count))
        if fragmentation == "none":
            free_list = frames
        elif fragmentation == "shuffled":
            rng = random.Random(seed)
            rng.shuffle(frames)
            free_list = frames
        elif fragmentation == "aged":
            rng = random.Random(seed)
            free_list = [f for f in frames if rng.random() < 0.5]
            rng.shuffle(free_list)
        elif fragmentation == "checkerboard":
            free_list = [f for f in frames if (f - first_frame) % 2 == 0]
        else:
            raise ValueError(f"unknown fragmentation mode {fragmentation!r}")
        # Pop from the end, so reverse to preserve intended order.
        self._free: List[int] = list(reversed(free_list))
        self._free_set: Set[int] = set(free_list)
        self.stats = FrameStats()

    @property
    def free_frames(self) -> int:
        """Number of currently free frames."""
        return len(self._free)

    def allocate(self) -> int:
        """Allocate one frame; returns its frame number (PFN)."""
        if not self._free:
            raise OutOfMemory("no free physical frames")
        pfn = self._free.pop()
        self._free_set.discard(pfn)
        self.stats.allocated += 1
        return pfn

    def allocate_many(self, count: int) -> List[int]:
        """Allocate *count* frames (not necessarily contiguous)."""
        if count > len(self._free):
            raise OutOfMemory(
                f"requested {count} frames, only {len(self._free)} free"
            )
        return [self.allocate() for _ in range(count)]

    def allocate_contiguous(self, count: int, align_frames: int = 1) -> int:
        """Allocate *count* contiguous frames aligned to *align_frames*.

        This is what a conventional superpage needs.  Returns the first
        PFN.  Raises :class:`OutOfMemory` when fragmentation leaves no
        suitable run — the failure mode shadow superpages eliminate.
        """
        self.stats.contiguous_requests += 1
        free_set = self._free_set
        start = self.first_frame
        if start % align_frames:
            start += align_frames - (start % align_frames)
        limit = self.first_frame + self.frame_count - count
        pfn = start
        while pfn <= limit:
            if all((pfn + k) in free_set for k in range(count)):
                for k in range(count):
                    frame = pfn + k
                    free_set.discard(frame)
                    self._free.remove(frame)
                self.stats.allocated += count
                return pfn
            pfn += align_frames
        self.stats.contiguous_failures += 1
        raise OutOfMemory(
            f"no aligned run of {count} contiguous frames available"
        )

    def free(self, pfn: int) -> None:
        """Return one frame to the allocator."""
        if pfn in self._free_set:
            raise ValueError(f"frame {pfn:#x} is already free")
        if not (
            self.first_frame <= pfn < self.first_frame + self.frame_count
        ):
            raise ValueError(f"frame {pfn:#x} is outside this allocator")
        self._free.append(pfn)
        self._free_set.add(pfn)
        self.stats.freed += 1

    @staticmethod
    def frame_paddr(pfn: int) -> int:
        """Physical address of the start of frame *pfn*."""
        return pfn << BASE_PAGE_SHIFT

    @staticmethod
    def paddr_frame(paddr: int) -> int:
        """Frame number containing physical address *paddr*."""
        return paddr >> BASE_PAGE_SHIFT

    def largest_free_run(self) -> int:
        """Length (in frames) of the longest free contiguous run.

        A direct fragmentation metric used by the ablation benches.
        """
        if not self._free_set:
            return 0
        best = 0
        run = 0
        for pfn in range(self.first_frame, self.first_frame + self.frame_count):
            if pfn in self._free_set:
                run += 1
                best = max(best, run)
            else:
                run = 0
        return best


def frames_for_bytes(length: int) -> int:
    """Number of base-page frames needed to back *length* bytes."""
    return (length + BASE_PAGE_SIZE - 1) >> BASE_PAGE_SHIFT
