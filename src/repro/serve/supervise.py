"""Supervised shard pool: deadlines, retries, poison, circuit breaker.

The scheduler's original pool path (PR 5) was a bare
``ProcessPoolExecutor``: no per-scenario deadline, no retry, and one
dead worker failed every in-flight scenario.  This module replaces it
with a *supervision layer* (DESIGN.md §13) built on raw
``multiprocessing`` workers, each wired to the parent by its own pipe
pair so one killed worker can never corrupt a channel another worker
depends on:

* **deadlines** — every dispatch carries a wall-clock deadline
  (:class:`SupervisionPolicy` default, overridable per spec); a
  watchdog hard-kills a worker that overruns deadline + grace and
  respawns the pool slot;
* **retry with backoff** — transient failures (a killed/hung/crashed
  worker, any ``OSError``) are retried with capped exponential backoff
  plus deterministic seeded jitter;
* **poison quarantine** — a scenario that keeps failing is classified
  *poison*, written to a typed :class:`PoisonRecord` sidecar under the
  store's ``poison/`` directory, and reported; the sweep completes
  with an explicit partial-result report instead of dying;
* **circuit breaker** — when the terminal-failure rate crosses a
  threshold the sweep aborts early with a
  :class:`~repro.errors.CircuitBreakerOpen` diagnosis (completed work
  is already committed, so a rerun resumes from the store);
* **graceful shutdown** — SIGINT/SIGTERM (via :class:`ShutdownGuard`)
  drains in-flight scenarios to the store and stops dispatching; a
  second signal hard-aborts.

The supervisor state machine per scenario::

    running ──ok──────────────────────────▶ committed
       │ transient failure (kill/crash/OSError)
       ├──▶ retrying (backoff) ──▶ running
       │ deterministic failure < threshold
       ├──▶ retrying (backoff) ──▶ running
       │ repeated failure ≥ threshold / retries exhausted
       ├──▶ poisoned (PoisonRecord sidecar, sweep continues)
       └─ sweep failure rate ≥ breaker threshold ─▶ breaker-open

Chaos injection (:mod:`repro.serve.chaos`) plugs in at dispatch time —
the supervisor consults the plan once per dispatch and ships the
directive to the worker — which is exactly what ``repro chaos soak``
uses to prove all of the above under seeded failure storms.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import json
import os
import random
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    CircuitBreakerOpen,
    PoisonedScenario,
    ScenarioDeadlineExceeded,
    WorkerCrashed,
)
from ..obs import MetricsRegistry
from ..obs.registry import DEADLINE_FRACTION_EDGES, SCENARIO_WALL_EDGES
from .chaos import ChaosDirective, ChaosPlan

__all__ = [
    "EXIT_ABORTED",
    "EXIT_INTERRUPTED",
    "POISON_SCHEMA",
    "PoisonRecord",
    "ScenarioOutcome",
    "ScenarioTask",
    "ShardSupervisor",
    "ShutdownGuard",
    "SupervisionPolicy",
    "SupervisionReport",
    "TaskIntake",
    "is_transient",
    "load_poison_records",
    "write_interrupt_checkpoint",
]


class TaskIntake:
    """What :meth:`ShardSupervisor.serve` pulls tasks from.

    Duck-typed contract (the daemon adapts its
    :class:`~repro.serve.queue.FairQueue` to it); documented as a class
    so the supervisor side is explicit:

    * ``poll()`` — next :class:`ScenarioTask` without blocking, or
      ``None`` when nothing is queued *right now*;
    * ``wait(timeout)`` — block up to *timeout* seconds for an item or
      close, so the idle supervisor sleeps on a condition instead of
      spinning at the watchdog tick;
    * ``closed`` — ``True`` once no further task will ever be
      *accepted* (the producer side is shut).  The serve loop exits
      when ``closed`` holds, ``poll()`` came back empty, and nothing
      is in flight — so a closed-but-not-yet-drained intake still gets
      its backlog executed;
    * ``__len__`` (optional) — current backlog depth; a draining
      supervisor adds it to ``report.pending`` once, so the drain
      report accounts for intake work it will never poll.
    """

    def poll(self):  # pragma: no cover - interface documentation
        raise NotImplementedError

    def wait(self, timeout: Optional[float] = None):  # pragma: no cover
        raise NotImplementedError

    @property
    def closed(self) -> bool:  # pragma: no cover
        raise NotImplementedError

#: Exit code for a sweep drained gracefully after SIGINT/SIGTERM
#: (EX_TEMPFAIL: partial progress committed, rerun resumes from the
#: store).
EXIT_INTERRUPTED = 75

#: Exit code for a hard abort (second signal).
EXIT_ABORTED = 130

#: Poison sidecar schema; version-bumped on layout changes.
POISON_SCHEMA = "repro-poison/1"

#: Exceptions the supervisor treats as transient (retry with backoff).
#: Everything else is a deterministic scenario failure that counts
#: toward the poison threshold.
TRANSIENT_ERRORS = (OSError, ScenarioDeadlineExceeded, WorkerCrashed)


def is_transient(error: BaseException) -> bool:
    """Transient failures are retried; deterministic ones poison."""
    return isinstance(error, TRANSIENT_ERRORS)


@dataclass(frozen=True)
class SupervisionPolicy:
    """The supervisor's knobs; defaults are generous enough that a
    healthy sweep never notices supervision exists.

    ``deadline_seconds`` / ``max_attempts`` are per-sweep defaults; a
    :class:`~repro.api.ScenarioSpec` may override both (budget knobs,
    excluded from the result fingerprint).  ``poison_threshold`` is how
    many *deterministic* failures poison a scenario; ``max_attempts``
    caps total tries when failures are transient.  The breaker trips
    when terminal failures reach ``breaker_threshold`` of terminal
    outcomes, once at least ``breaker_min_samples`` scenarios have
    reached a terminal state.
    """

    deadline_seconds: Optional[float] = 600.0
    grace_seconds: float = 5.0
    max_attempts: int = 4
    poison_threshold: int = 2
    backoff_base_seconds: float = 0.25
    backoff_cap_seconds: float = 5.0
    backoff_jitter: float = 0.25
    breaker_threshold: float = 0.5
    breaker_min_samples: int = 8
    watchdog_tick_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive (or None)")
        if self.grace_seconds < 0:
            raise ValueError("grace_seconds must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be at least 1")
        if self.backoff_base_seconds < 0 or self.backoff_cap_seconds < 0:
            raise ValueError("backoff bounds must be non-negative")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError("breaker_threshold must be in (0, 1]")
        if self.breaker_min_samples < 1:
            raise ValueError("breaker_min_samples must be at least 1")
        if self.watchdog_tick_seconds <= 0:
            raise ValueError("watchdog_tick_seconds must be positive")

    def backoff_delay(self, attempt: int, rng: random.Random) -> float:
        """Capped exponential backoff with seeded jitter; *attempt* is
        the 1-based count of failures so far."""
        delay = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2 ** (attempt - 1)),
        )
        if self.backoff_jitter:
            delay *= 1.0 + rng.uniform(
                -self.backoff_jitter, self.backoff_jitter
            )
        return max(0.0, delay)


@dataclass(frozen=True)
class ScenarioTask:
    """One scenario as the supervisor sees it: an opaque picklable
    spec plus its identity for reporting/quarantine."""

    index: int
    spec: object
    label: str
    fingerprint: Optional[str] = None
    workload: str = ""
    config_label: str = ""
    #: The exact per-workload input scales this scenario must run at,
    #: as sorted (name, scale) pairs resolved when the fingerprint was
    #: computed.  Shipped with every dispatch so the worker pins
    #: precisely these, whatever its context ran before; None lets the
    #: worker resolve against its own defaults.
    scales: Optional[Tuple[Tuple[str, float], ...]] = None


@dataclass
class ScenarioOutcome:
    """Terminal result of one supervised scenario."""

    task: ScenarioTask
    stats: Optional[dict] = None
    metrics: Optional[Dict[str, float]] = None
    error: Optional[BaseException] = None
    attempts: int = 1
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class PoisonRecord:
    """Typed sidecar for one quarantined scenario.

    ``classification`` is ``"deterministic"`` (failed the same way
    ``poison_threshold`` times) or ``"retries_exhausted"`` (transient
    failures past ``max_attempts``).  ``errors`` is every attempt's
    failure as ``"Type: message"`` strings, oldest first.
    """

    index: int
    label: str
    fingerprint: Optional[str]
    workload: str
    config_label: str
    attempts: int
    classification: str
    errors: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        doc = dataclasses.asdict(self)
        doc["schema"] = POISON_SCHEMA
        return doc

    @property
    def last_error(self) -> str:
        return self.errors[-1] if self.errors else "unknown"

    def sidecar_name(self) -> str:
        stem = self.fingerprint or f"idx{self.index}"
        return f"{stem}.poison.json"


def write_poison_record(poison_dir: Path, record: PoisonRecord) -> Path:
    """Durably persist one poison sidecar (fsync'd tmp + rename)."""
    from .store import atomic_write_bytes  # store owns durable writes

    path = Path(poison_dir) / record.sidecar_name()
    blob = json.dumps(record.to_json(), sort_keys=True, indent=1)
    atomic_write_bytes(path, blob.encode("utf-8"))
    return path


def load_poison_records(poison_dir: Path) -> List[PoisonRecord]:
    """Read every poison sidecar under *poison_dir* (bad files skipped)."""
    records: List[PoisonRecord] = []
    poison_dir = Path(poison_dir)
    if not poison_dir.exists():
        return records
    known = set(PoisonRecord.__dataclass_fields__)
    for path in sorted(poison_dir.glob("*.poison.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(doc, dict) or doc.get("schema") != POISON_SCHEMA:
            continue
        fields = {k: v for k, v in doc.items() if k in known}
        try:
            records.append(PoisonRecord(**fields))
        except TypeError:
            continue
    return records


@dataclass
class SupervisionReport:
    """What supervision did during one sweep (the partial-result
    report the sweep completes with)."""

    completed: int = 0
    retries: int = 0
    deadline_kills: int = 0
    worker_crashes: int = 0
    worker_respawns: int = 0
    commit_retries: int = 0
    chaos_injections: int = 0
    poison: List[PoisonRecord] = field(default_factory=list)
    #: Seconds past the deadline each hung worker survived before the
    #: watchdog killed it (soak asserts these stay under grace+margin).
    kill_overshoots: List[float] = field(default_factory=list)
    breaker_open: bool = False
    interrupted: bool = False
    aborted: bool = False
    pending: int = 0

    @property
    def clean(self) -> bool:
        """True when supervision never had to intervene."""
        return not (
            self.retries or self.poison or self.breaker_open
            or self.interrupted
        )

    def render(self) -> str:
        lines = [
            f"supervision: {self.completed} completed, "
            f"{self.retries} retr(ies), {self.deadline_kills} deadline "
            f"kill(s), {self.worker_crashes} worker crash(es), "
            f"{len(self.poison)} poisoned"
        ]
        for record in self.poison:
            lines.append(
                f"  poisoned [{record.classification}] {record.label} "
                f"after {record.attempts} attempt(s): "
                f"{record.last_error}"
            )
        if self.breaker_open:
            lines.append("  circuit breaker OPEN: sweep aborted early")
        if self.interrupted:
            lines.append(
                f"  interrupted: {self.pending} scenario(s) never "
                "finished (rerun resumes from the store)"
            )
        return "\n".join(lines)


def write_interrupt_checkpoint(
    store_root: Path,
    report: SupervisionReport,
    completed_fingerprints: Sequence[str],
    pending_labels: Sequence[str],
) -> Optional[Path]:
    """Persist the graceful-shutdown checkpoint next to the store.

    The store itself already holds every committed result (resume is a
    cache hit); this sidecar records what a drained sweep finished vs
    never started, so an operator can see at a glance what a rerun
    will actually do.
    """
    from .store import atomic_write_bytes

    path = Path(store_root) / "interrupted_sweep.json"
    doc = {
        "schema": "repro-sweep-interrupt/1",
        "completed": sorted(completed_fingerprints),
        "pending": list(pending_labels),
        "poisoned": [r.label for r in report.poison],
    }
    try:
        atomic_write_bytes(
            path, json.dumps(doc, sort_keys=True, indent=1).encode("utf-8")
        )
    except OSError:
        return None
    return path


# ====================================================================== #
# Graceful shutdown
# ====================================================================== #


class ShutdownGuard:
    """Two-stage SIGINT/SIGTERM handling for a running sweep.

    First signal: request a *drain* — the supervisor stops dispatching,
    lets in-flight scenarios finish and commit, and the CLI exits with
    :data:`EXIT_INTERRUPTED`.  Second signal: request a hard *abort* —
    busy workers are killed and the sweep stops immediately.  A third
    signal falls through to a plain KeyboardInterrupt.

    Usable as a context manager; installing handlers outside the main
    thread is a silent no-op (the guard still works when driven
    programmatically via :meth:`request_drain` / :meth:`request_abort`,
    which is what the tests do).
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self, progress: Optional[Callable[[str], None]] = None):
        self.drain_requested = False
        self.abort_requested = False
        self._progress = progress
        self._previous: List[Tuple[int, object]] = []

    # -- programmatic surface (used by tests and the supervisor) ------- #

    def request_drain(self) -> None:
        self.drain_requested = True

    def request_abort(self) -> None:
        self.drain_requested = True
        self.abort_requested = True

    # -- signal surface ------------------------------------------------ #

    def handle_signal(self, signum, frame=None) -> None:
        if not self.drain_requested:
            self.request_drain()
            if self._progress is not None:
                self._progress(
                    "interrupt: draining in-flight scenarios to the "
                    "store (signal again to hard-abort)..."
                )
            return
        if not self.abort_requested:
            self.request_abort()
            if self._progress is not None:
                self._progress("interrupt: hard abort")
            return
        raise KeyboardInterrupt

    def __enter__(self) -> "ShutdownGuard":
        try:
            for signum in self.SIGNALS:
                self._previous.append(
                    (signum, signal.signal(signum, self.handle_signal))
                )
        except ValueError:
            # Not the main thread: signal handlers cannot be installed
            # here; the guard still works programmatically.
            for signum, previous in self._previous:
                signal.signal(signum, previous)
            self._previous = []
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous:
            signal.signal(signum, previous)
        self._previous = []


# ====================================================================== #
# Worker process
# ====================================================================== #


def _supervised_worker(ctx_kwargs: dict, task_conn, result_conn) -> None:
    """Worker-process entry: execute dispatched scenarios one at a time.

    The ``BenchContext`` is built lazily so a respawned worker costs
    nothing until its first dispatch (the parent pre-warmed the on-disk
    trace cache).  Chaos directives are honoured *before* the scenario
    starts, so an injected kill/stall never leaves a half-simulated
    result behind.
    """
    from ..bench.runner import BenchContext
    from ..trace.store import store_registry
    from .scheduler import _picklable, execute_spec

    context = None
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        token, spec, scales, directive = task
        if directive is not None and directive.active:
            if directive.kill:
                os.kill(os.getpid(), signal.SIGKILL)
            if directive.stall_seconds is not None:
                time.sleep(directive.stall_seconds)
            if directive.slow_seconds is not None:
                time.sleep(directive.slow_seconds)
        if context is None:
            context = BenchContext(**ctx_kwargs)
        # Trace-cache activity in this process (store hits/misses, the
        # cache_corrupt counter) is invisible to the parent — a
        # RuntimeWarning emitted here dies with the pipe.  Ship the
        # counter *delta* alongside the result so the supervisor can
        # fold it into the parent's operational registry.
        ops_before = store_registry().collect()
        try:
            result = execute_spec(
                context, spec, dict(scales) if scales else None
            )
            outcome = (
                token,
                dataclasses.asdict(result.stats),
                result.metrics,
                _ops_delta(ops_before, store_registry().collect()),
                None,
            )
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            outcome = (
                token,
                None,
                None,
                _ops_delta(ops_before, store_registry().collect()),
                _picklable(exc),
            )
        try:
            result_conn.send(outcome)
        except (BrokenPipeError, OSError):
            return


def _ops_delta(before: dict, after: dict) -> dict:
    """Positive counter movement between two registry snapshots."""
    return {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] - before.get(name, 0) > 0
    }


@dataclass
class _JobState:
    """One scenario's supervision lifecycle."""

    task: ScenarioTask
    attempts: int = 0
    transient_failures: int = 0
    deterministic_failures: int = 0
    errors: List[str] = field(default_factory=list)


@dataclass
class _Dispatch:
    """One in-flight (worker, scenario) binding."""

    job: _JobState
    token: int
    started: float
    deadline: Optional[float]
    kill_at: Optional[float]


class _Worker:
    """One supervised pool slot: a process plus its private pipes."""

    def __init__(self, mp_ctx, ctx_kwargs: dict) -> None:
        task_r, self.task_w = mp_ctx.Pipe(duplex=False)
        self.result_r, result_w = mp_ctx.Pipe(duplex=False)
        self.proc = mp_ctx.Process(
            target=_supervised_worker,
            args=(ctx_kwargs, task_r, result_w),
            daemon=True,
        )
        self.proc.start()
        # The child holds its own copies; close the parent's ends so a
        # dead worker surfaces as EOF instead of a hang.
        task_r.close()
        result_w.close()
        self.busy: Optional[_Dispatch] = None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):
            pass
        self.proc.join(timeout=5.0)
        self.close()

    def retire(self) -> None:
        """Polite shutdown of an idle worker."""
        try:
            self.task_w.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():
            self.kill()
            return
        self.close()

    def close(self) -> None:
        for conn in (self.task_w, self.result_r):
            try:
                conn.close()
            except OSError:
                pass


# ====================================================================== #
# The supervisor
# ====================================================================== #


class ShardSupervisor:
    """Run scenarios on a pool of supervised workers (DESIGN.md §13).

    ``run()`` drives every :class:`ScenarioTask` to a terminal state —
    committed, poisoned, or dropped by drain/breaker — invoking
    *on_outcome* (from the supervisor's thread) as each scenario
    finishes, and returns the :class:`SupervisionReport`.  Obs
    instruments land in *registry* under the scheduler's ``serve.*``
    namespace.
    """

    def __init__(
        self,
        ctx_kwargs: dict,
        jobs: int,
        policy: Optional[SupervisionPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
        registry: Optional[MetricsRegistry] = None,
        poison_dir: Optional[Path] = None,
        shutdown: Optional[ShutdownGuard] = None,
        progress_cb: Optional[Callable[[str], None]] = None,
    ) -> None:
        import multiprocessing

        self.ctx_kwargs = ctx_kwargs
        self.jobs = max(1, jobs)
        self.policy = policy or SupervisionPolicy()
        self.chaos = chaos
        self.poison_dir = Path(poison_dir) if poison_dir else None
        self.shutdown = shutdown
        self.progress_cb = progress_cb
        self._mp = multiprocessing.get_context()
        self._tokens = itertools.count()
        self._rng = random.Random(f"{self.policy.seed}:backoff")
        reg = registry or MetricsRegistry()
        self.c_retries = reg.counter("serve.retries")
        self.c_deadline_kills = reg.counter("serve.deadline_kills")
        self.c_worker_crashes = reg.counter("serve.worker_crashes")
        self.c_worker_respawns = reg.counter("serve.worker_respawns")
        self.c_poisoned = reg.counter("serve.poisoned")
        self.c_breaker_trips = reg.counter("serve.breaker_trips")
        self.c_chaos_injections = reg.counter("serve.chaos_injections")
        self.h_wall = reg.histogram(
            "serve.scenario_wall_seconds", SCENARIO_WALL_EDGES
        )
        self.h_deadline_fraction = reg.histogram(
            "serve.deadline_fraction", DEADLINE_FRACTION_EDGES
        )
        self.report = SupervisionReport()
        self._breaker_error: Optional[CircuitBreakerOpen] = None
        self._terminal_failures = 0
        # Retry heap; an instance attribute so the failure path can
        # requeue from any depth of the loop.
        self._delayed: List[Tuple[float, int, _JobState]] = []
        self._delay_seq = itertools.count()

    # -- helpers ------------------------------------------------------- #

    def _log(self, message: str) -> None:
        if self.progress_cb is not None:
            self.progress_cb(message)

    def _effective(self, task: ScenarioTask) -> Tuple[Optional[float], int]:
        """(deadline, max_attempts) for one task: spec override else
        policy default."""
        spec = task.spec
        deadline = getattr(spec, "deadline_seconds", None)
        if deadline is None:
            deadline = self.policy.deadline_seconds
        attempts = getattr(spec, "max_attempts", None)
        if attempts is None:
            attempts = self.policy.max_attempts
        return deadline, attempts

    # -- the supervision loop ------------------------------------------ #

    def run(
        self,
        tasks: Sequence[ScenarioTask],
        on_outcome: Callable[[ScenarioOutcome], None],
    ) -> SupervisionReport:
        """Drive one fixed batch to terminal states (the sweep path)."""
        ready = deque(_JobState(task) for task in tasks)
        workers_n = min(self.jobs, max(1, len(ready)))
        return self._supervise(ready, None, workers_n, on_outcome)

    def serve(
        self,
        intake: "TaskIntake",
        on_outcome: Callable[[ScenarioOutcome], None],
    ) -> SupervisionReport:
        """Long-lived mode: pull :class:`ScenarioTask`\\ s from *intake*
        until it closes (the daemon path, DESIGN.md §14).

        *intake* is polled only when a worker slot is free, so the
        intake's own ordering policy (the daemon's priority +
        weighted-fair tenant queue) decides what runs next — the
        supervisor never buffers ahead.  The full pool is spawned up
        front and stays warm between requests; retries, deadlines,
        poison, and drain semantics are identical to :meth:`run`.
        """
        return self._supervise(deque(), intake, self.jobs, on_outcome)

    def _supervise(
        self,
        ready: "deque[_JobState]",
        intake: Optional["TaskIntake"],
        workers_n: int,
        on_outcome: Callable[[ScenarioOutcome], None],
    ) -> SupervisionReport:
        self._delayed = []
        in_flight = 0
        workers = [
            _Worker(self._mp, self.ctx_kwargs) for _ in range(workers_n)
        ]
        tick = self.policy.watchdog_tick_seconds
        try:
            while True:
                now = time.monotonic()
                while self._delayed and self._delayed[0][0] <= now:
                    ready.append(heapq.heappop(self._delayed)[2])
                draining = (
                    self.shutdown is not None
                    and self.shutdown.drain_requested
                )
                if draining:
                    if not self.report.interrupted and intake is not None:
                        # First drain tick: the intake's un-polled
                        # backlog is dropped work too — count it once
                        # so the report is honest (the daemon fails
                        # those waiters itself).
                        try:
                            self.report.pending += len(intake)
                        except TypeError:
                            pass  # intake without __len__
                    dropped = len(ready) + len(self._delayed)
                    if dropped:
                        self.report.pending += dropped
                        ready.clear()
                        self._delayed.clear()
                    self.report.interrupted = True
                    if self.shutdown.abort_requested:
                        self.report.aborted = True
                        self.report.pending += in_flight
                        for worker in workers:
                            if worker.busy is not None:
                                worker.busy = None
                                worker.kill()
                        break
                    if not in_flight:
                        break
                else:
                    for worker in workers:
                        if worker.busy is not None:
                            continue
                        job: Optional[_JobState] = None
                        if ready:
                            job = ready.popleft()
                        elif intake is not None:
                            task = intake.poll()
                            if task is not None:
                                job = _JobState(task)
                        if job is None:
                            break
                        if self._dispatch(
                            worker, job, workers, on_outcome
                        ):
                            in_flight += 1
                if not ready and not self._delayed and not in_flight:
                    if intake is None or intake.closed:
                        break
                conns = [w.result_r for w in workers if w.busy is not None]
                if not conns:
                    if self._delayed:
                        time.sleep(
                            min(tick, max(0.0, self._delayed[0][0] - now))
                        )
                    elif intake is not None:
                        intake.wait(tick)
                    continue
                for conn in _conn_wait(conns, tick):
                    worker = next(
                        (w for w in workers if w.result_r is conn), None
                    )
                    if worker is None or worker.busy is None:
                        continue
                    in_flight -= self._reap(worker, workers, on_outcome)
                now = time.monotonic()
                for slot, worker in enumerate(workers):
                    dispatch = worker.busy
                    if dispatch is None or dispatch.kill_at is None:
                        continue
                    if now < dispatch.kill_at:
                        continue
                    if worker.result_r.poll():
                        # Finished just under the wire: take the result
                        # instead of killing.
                        in_flight -= self._reap(worker, workers, on_outcome)
                        continue
                    self._kill_hung(slot, workers, now, on_outcome)
                    in_flight -= 1
                if self._breaker_error is not None:
                    self.report.pending += (
                        len(ready) + len(self._delayed) + in_flight
                    )
                    ready.clear()
                    self._delayed.clear()
                    for worker in workers:
                        if worker.busy is not None:
                            worker.busy = None
                            worker.kill()
                    in_flight = 0
                    break
        finally:
            for worker in workers:
                if worker.busy is not None or not worker.alive:
                    worker.kill()
                else:
                    worker.retire()
        if self.chaos is not None:
            self.report.chaos_injections = self.chaos.total_injected
        if self._breaker_error is not None:
            raise self._breaker_error
        return self.report

    # -- dispatch / completion ----------------------------------------- #

    def _dispatch(
        self,
        worker: _Worker,
        job: _JobState,
        workers: List[_Worker],
        on_outcome: Callable[[ScenarioOutcome], None],
    ) -> bool:
        """Ship one scenario to *worker*; False when the worker was
        found dead (the slot is respawned and the job re-routed through
        the failure machinery)."""
        directive: Optional[ChaosDirective] = None
        if self.chaos is not None:
            directive = self.chaos.dispatch_directive()
            if directive.active:
                self.c_chaos_injections.inc()
        token = next(self._tokens)
        deadline, _ = self._effective(job.task)
        started = time.monotonic()
        try:
            worker.task_w.send(
                (token, job.task.spec, job.task.scales, directive)
            )
        except (BrokenPipeError, OSError):
            exitcode = worker.proc.exitcode
            worker.kill()
            self._respawn(worker, workers)
            self.c_worker_crashes.inc()
            self.report.worker_crashes += 1
            job.attempts += 1
            self._record_failure(
                job, WorkerCrashed(job.task.label, exitcode), on_outcome
            )
            return False
        worker.busy = _Dispatch(
            job=job,
            token=token,
            started=started,
            deadline=deadline,
            kill_at=(
                started + deadline + self.policy.grace_seconds
                if deadline is not None
                else None
            ),
        )
        return True

    def _reap(
        self,
        worker: _Worker,
        workers: List[_Worker],
        on_outcome: Callable[[ScenarioOutcome], None],
    ) -> int:
        """Consume one worker message; returns 1 when a slot freed."""
        dispatch = worker.busy
        job = dispatch.job
        try:
            message = worker.result_r.recv()
        except (EOFError, OSError):
            # The worker died mid-scenario (chaos SIGKILL, OOM, bug):
            # respawn the slot and retry exactly this scenario — the
            # rest of the sweep is untouched.
            exitcode = worker.proc.exitcode
            worker.busy = None
            worker.kill()
            self._respawn(worker, workers)
            self.c_worker_crashes.inc()
            self.report.worker_crashes += 1
            job.attempts += 1
            self._record_failure(
                job, WorkerCrashed(job.task.label, exitcode), on_outcome
            )
            return 1
        token, stats, metrics, ops, error = message
        if ops:
            # Fold the worker's trace-store counter movement into this
            # process's operational registry, making cache corruption
            # (and store traffic) from pool workers visible in
            # ``repro metrics dump`` / the daemon's /metrics.  Done
            # before the staleness check: a superseded dispatch still
            # did real cache work.
            from ..trace.store import store_registry

            for name, delta in ops.items():
                store_registry().counter(name).inc(delta)
        if token != dispatch.token:
            return 0  # stale message from a superseded dispatch
        worker.busy = None
        wall = time.monotonic() - dispatch.started
        job.attempts += 1
        if error is not None:
            self._record_failure(job, error, on_outcome)
            return 1
        self.h_wall.observe(wall)
        if dispatch.deadline:
            self.h_deadline_fraction.observe(wall / dispatch.deadline)
        self.report.completed += 1
        on_outcome(
            ScenarioOutcome(
                task=job.task,
                stats=stats,
                metrics=metrics,
                attempts=job.attempts,
                wall_seconds=wall,
            )
        )
        self._check_breaker()
        return 1

    def _respawn(self, worker: _Worker, workers: List[_Worker]) -> None:
        workers[workers.index(worker)] = _Worker(self._mp, self.ctx_kwargs)
        self.c_worker_respawns.inc()
        self.report.worker_respawns += 1

    def _kill_hung(
        self,
        slot: int,
        workers: List[_Worker],
        now: float,
        on_outcome: Callable[[ScenarioOutcome], None],
    ) -> None:
        worker = workers[slot]
        dispatch = worker.busy
        job = dispatch.job
        elapsed = now - dispatch.started
        self._log(
            f"  watchdog: killing hung worker on {job.task.label} "
            f"({elapsed:.1f}s > {dispatch.deadline:g}s deadline)"
        )
        worker.busy = None
        worker.kill()
        self._respawn(worker, workers)
        self.c_deadline_kills.inc()
        self.report.deadline_kills += 1
        # How far past the *deadline* the kill landed; the acceptance
        # bound is grace + scheduling margin.
        self.report.kill_overshoots.append(elapsed - dispatch.deadline)
        job.attempts += 1
        self._record_failure(
            job,
            ScenarioDeadlineExceeded(
                job.task.label, dispatch.deadline, elapsed
            ),
            on_outcome,
        )

    # -- failure handling ---------------------------------------------- #

    def _record_failure(
        self,
        job: _JobState,
        error: BaseException,
        on_outcome: Callable[[ScenarioOutcome], None],
    ) -> None:
        """Classify one attempt's failure: retry with backoff, or
        poison.  ``job.attempts`` was already advanced by the caller."""
        transient = is_transient(error)
        job.errors.append(f"{type(error).__name__}: {error}")
        if transient:
            job.transient_failures += 1
        else:
            job.deterministic_failures += 1
        _, max_attempts = self._effective(job.task)
        poisoned = (
            job.deterministic_failures >= self.policy.poison_threshold
            or job.attempts >= max_attempts
        )
        if not poisoned:
            self.c_retries.inc()
            self.report.retries += 1
            delay = self.policy.backoff_delay(job.attempts, self._rng)
            self._log(
                f"  retrying {job.task.label} (attempt "
                f"{job.attempts + 1}, backoff {delay:.2f}s): "
                f"{type(error).__name__}"
            )
            heapq.heappush(
                self._delayed,
                (time.monotonic() + delay, next(self._delay_seq), job),
            )
            return
        classification = (
            "deterministic"
            if job.deterministic_failures >= self.policy.poison_threshold
            else "retries_exhausted"
        )
        record = PoisonRecord(
            index=job.task.index,
            label=job.task.label,
            fingerprint=job.task.fingerprint,
            workload=job.task.workload,
            config_label=job.task.config_label,
            attempts=job.attempts,
            classification=classification,
            errors=list(job.errors),
        )
        self.report.poison.append(record)
        self.c_poisoned.inc()
        self._log(
            f"  poisoned [{classification}] {job.task.label}: "
            f"{record.last_error}"
        )
        if self.poison_dir is not None:
            try:
                write_poison_record(self.poison_dir, record)
            except OSError:
                pass  # read-only store: the in-memory report remains
        self._terminal_failures += 1
        on_outcome(
            ScenarioOutcome(
                task=job.task,
                error=PoisonedScenario(
                    job.task.label, job.attempts, record.last_error
                ),
                attempts=job.attempts,
            )
        )
        self._check_breaker()

    def _check_breaker(self) -> None:
        if self._breaker_error is not None:
            return
        total = self.report.completed + self._terminal_failures
        if total < self.policy.breaker_min_samples:
            return
        if (
            self._terminal_failures / total
            >= self.policy.breaker_threshold
        ):
            self.c_breaker_trips.inc()
            self.report.breaker_open = True
            self._breaker_error = CircuitBreakerOpen(
                self._terminal_failures,
                self.report.completed,
                self.policy.breaker_threshold,
            )
