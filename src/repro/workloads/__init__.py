"""Models of the paper's five benchmark programs.

Each module implements one program's address-space layout, kernel events
(remap / modified-sbrk growth) and data reference stream:

* :mod:`repro.workloads.compress95` — LZW compress/decompress;
* :mod:`repro.workloads.vortex` — OO in-core database build + transactions;
* :mod:`repro.workloads.radix` — SPLASH-2 radix sort (executed for real);
* :mod:`repro.workloads.em3d` — bipartite-graph EM relaxation;
* :mod:`repro.workloads.gcc` — the cc1 compiler pass.

Use :func:`build_workload` to construct a trace by name.
"""

from .base import (
    HeapBuilder,
    Workload,
    build_workload,
    register,
    stream_workload,
    workload_names,
)
from .compress95 import Compress95
from .em3d import Em3d
from .gcc import Gcc
from .radix import Radix
from .synthetic import Scatter, Stream, Zipf
from .vortex import Vortex

#: The paper's benchmark suite, in the order Figure 3 plots them.
PAPER_SUITE = ("compress95", "vortex", "radix", "em3d", "gcc")

#: Synthetic sensitivity workloads (not part of the paper's suite).
SYNTHETIC_SUITE = ("scatter", "stream", "zipf")

__all__ = [
    "HeapBuilder",
    "Workload",
    "build_workload",
    "register",
    "stream_workload",
    "workload_names",
    "Compress95",
    "Em3d",
    "Gcc",
    "Radix",
    "Scatter",
    "Stream",
    "Zipf",
    "Vortex",
    "PAPER_SUITE",
    "SYNTHETIC_SUITE",
]
