"""Chrome-trace-event export (Perfetto / chrome://tracing compatible).

Produces the JSON object format — ``{"traceEvents": [...]}`` — using
only event phases Perfetto's importer accepts:

* ``M`` metadata events naming the process/threads;
* ``C`` counter events carrying the four Figure-3 cycle categories per
  attribution bucket (rendered as a stacked counter track);
* ``X`` complete events for costed operations (remaps, promotions,
  kernel services) with real durations;
* ``i`` instant events for point occurrences (TLB misses, MTLB fills
  and faults, injected faults).

Timestamps are microseconds of *simulated* time (cycles at the
configured CPU clock), so a Perfetto timeline reads in wall-clock units
of the simulated machine.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .attribution import CATEGORIES, PhaseBucket
from .tracer import EventTracer, KERNEL_OPS, TraceEvent

#: Simulated CPU clock used for cycle -> microsecond conversion.
DEFAULT_CPU_HZ = 240_000_000

#: Sites rendered as ``X`` complete events: payload b is a duration.
_DURATION_SITES = {"remap", "promotion", "kernel_entry", "tlb_miss"}

#: Virtual thread ids per site family, so Perfetto gives each its own row.
_SITE_TID = {
    "tlb_miss": 1,
    "cache_miss": 2,
    "mtlb_fill": 3,
    "mtlb_fault": 3,
    "remap": 4,
    "promotion": 4,
    "kernel_entry": 5,
    "fault_injected": 6,
}

_PID = 1


def _us(cycles: Union[int, float], cpu_hz: int) -> float:
    return cycles * 1_000_000.0 / cpu_hz


def _event_args(event: TraceEvent) -> Dict[str, Union[int, str]]:
    if event.site == "kernel_entry":
        op = (
            KERNEL_OPS[event.a]
            if 0 <= event.a < len(KERNEL_OPS)
            else str(event.a)
        )
        return {"op": op, "cycles": event.b}
    if event.site == "tlb_miss":
        return {"vaddr": f"{event.a:#x}", "handler_cycles": event.b}
    if event.site in ("mtlb_fill", "mtlb_fault"):
        return {"shadow_index": event.a, "detail": event.b}
    if event.site == "cache_miss":
        return {"paddr": f"{event.a:#x}", "stall_cycles": event.b}
    return {"a": event.a, "b": event.b}


def build_chrome_trace(
    events: List[TraceEvent],
    buckets: Optional[List[PhaseBucket]] = None,
    label: str = "repro",
    cpu_hz: int = DEFAULT_CPU_HZ,
) -> Dict[str, object]:
    """Assemble the trace-object dict ready for ``json.dump``."""
    out: List[Dict[str, object]] = []
    out.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": label},
        }
    )
    named: Dict[int, str] = {}
    for site, tid in _SITE_TID.items():
        named.setdefault(tid, site.split("_")[0] + " events")
    for tid, name in sorted(named.items()):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": name},
            }
        )

    for event in events:
        tid = _SITE_TID.get(event.site, 7)
        record: Dict[str, object] = {
            "name": event.site,
            "cat": "repro",
            "pid": _PID,
            "tid": tid,
            "ts": _us(event.cycle, cpu_hz),
            "args": _event_args(event),
        }
        if event.site in _DURATION_SITES and event.b > 0:
            record["ph"] = "X"
            record["dur"] = _us(event.b, cpu_hz)
        else:
            record["ph"] = "i"
            record["s"] = "t"
        out.append(record)

    for bucket in buckets or []:
        out.append(
            {
                "name": "figure3 cycle breakdown",
                "cat": "repro",
                "ph": "C",
                "pid": _PID,
                "tid": 0,
                "ts": _us(bucket.start_cycle, cpu_hz),
                "args": {
                    cat: getattr(bucket, cat) for cat in CATEGORIES
                },
            }
        )

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "label": label},
    }


def write_chrome_trace(
    path: Union[str, Path],
    events: List[TraceEvent],
    buckets: Optional[List[PhaseBucket]] = None,
    label: str = "repro",
    cpu_hz: int = DEFAULT_CPU_HZ,
) -> Path:
    """Write the Chrome-trace JSON file; returns the path written."""
    path = Path(path)
    payload = build_chrome_trace(
        events, buckets, label=label, cpu_hz=cpu_hz
    )
    path.write_text(json.dumps(payload))
    return path


def trace_from_tracer(
    tracer: EventTracer,
    buckets: Optional[List[PhaseBucket]] = None,
    label: str = "repro",
    cpu_hz: int = DEFAULT_CPU_HZ,
) -> Dict[str, object]:
    """Convenience: build the trace dict straight from a tracer."""
    return build_chrome_trace(
        tracer.events(), buckets, label=label, cpu_hz=cpu_hz
    )
