"""The :class:`TranslationBackend` protocol (DESIGN.md §16).

A *translation backend* owns everything between a CPU TLB miss and the
installed :class:`~repro.cpu.tlb.TlbEntry`: the intermediate translation
structures (shadow table + MTLB, range-coalescing state, a cache-resident
entry pool, ...), the miss/refill path, the kernel hooks its structures
need (promotion/demotion, remap shootdowns), and the metrics sources it
reports.  :class:`~repro.sim.system.System` speaks only this protocol —
it never special-cases a backend — which is what lets every workload,
engine policy, fault plan, and sweep multiply across backends.

Lifecycle (one backend instance per :class:`System`, built by
``System.__init__`` from the registry in :mod:`repro.core.backends`):

1. ``validate(config)`` (classmethod) — reject impossible knob
   combinations at :class:`~repro.sim.config.SystemConfig` construction
   time, before any machine exists.
2. ``build_parts(system)`` — construct the backend's translation
   structures; the returned :class:`BackendParts` is wired into the MMC
   and kernel exactly where the legacy MTLB block used to be.
3. ``attach(system)`` — late wiring once the TLB, miss handler, and
   kernel all exist.
4. ``refill_tlb(system, vaddr)`` — the software-visible miss path; both
   engines call it for every CPU TLB miss.
5. ``on_shootdown(system, vstart, length)`` — the kernel unmapped or
   remapped a virtual range; drop any backend state naming it.
6. ``register_metrics(system)`` / ``reach_bytes(system)`` — the
   metrics-source contract: counters land in the machine's registry,
   reach feeds the cross-backend figure (``repro-bench backends``).
7. ``sanitize(system, where)`` — backend-owned invariants, run by the
   sanitizer suite at every segment/event boundary when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:
    from ..mtlb import Mtlb
    from ..shadow_space import BucketShadowAllocator
    from ..shadow_table import ShadowPageTable
    from ...cpu.tlb import TlbEntry
    from ...sim.system import System


@dataclass
class BackendParts:
    """Structures a backend contributes to machine construction.

    All three are None for backends that keep their state private (the
    coalesced and Victima backends); the MTLB backend returns the
    paper's shadow table + MTLB + shadow-space allocator, which the
    System wires into the MMC and kernel exactly as it always has.
    """

    shadow_table: Optional["ShadowPageTable"] = None
    mtlb: Optional["Mtlb"] = None
    shadow_allocator: Optional["BucketShadowAllocator"] = None


def require_conventional(config, name: str) -> None:
    """Reject shadow-machine knobs for backends that own no shadow
    structures (coalesced, victima): under them the MMC decodes no
    shadow window and the kernel runs the conventional path only."""
    if config.mtlb.enabled:
        raise ValueError(
            f"backend {name!r} owns the translation path; disable "
            "the MTLB (mtlb.enabled=False) to use it"
        )
    if config.use_superpages:
        raise ValueError(
            f"backend {name!r} has no shadow superpages; "
            "use_superpages requires backend='mtlb'"
        )
    if config.promotion.enabled:
        raise ValueError(
            f"backend {name!r} has no promotion engine; online "
            "promotion requires backend='mtlb'"
        )
    if config.all_shadow:
        raise ValueError(
            f"backend {name!r} decodes no shadow window; all-shadow "
            "mode requires backend='mtlb'"
        )
    if config.stream_buffers.enabled:
        raise ValueError(
            f"backend {name!r} has no MMC retranslation for stream "
            "buffers to sit behind; they require backend='mtlb'"
        )


class TranslationBackend:
    """Base class every registered translation backend extends.

    Subclasses override the hooks they need; the defaults are the
    no-structure, no-op behaviour a minimal backend (plain per-page
    software refill) would want.  ``refill_tlb`` has no default — the
    miss path is the one thing every backend must define.
    """

    #: Registry key (``SystemConfig.backend`` value).
    name: str = ""

    def __init__(self, config) -> None:
        self.config = config

    # -- config-time ---------------------------------------------------- #

    @classmethod
    def validate(cls, config) -> None:
        """Raise ``ValueError`` on knob combinations this backend cannot
        run.  Called from ``SystemConfig.__post_init__``."""

    @classmethod
    def vector_config_supported(cls, config) -> Tuple[bool, str]:
        """Can the vector engine batch a machine built for *config*?

        ``(ok, reason)``; the reason is surfaced by ``engine='auto'``
        resolution banners and by ``validate_spec`` rejections of
        ``engine='vector'`` requests.
        """
        del config
        return True, ""

    # -- build-time ----------------------------------------------------- #

    def build_parts(self, system: "System") -> BackendParts:
        """Construct the backend's translation structures.

        Called early in ``System.__init__`` — the DRAM, bus, and fault
        plan exist; the MMC, cache, TLB, and kernel do not yet.
        """
        del system
        return BackendParts()

    def attach(self, system: "System") -> None:
        """Late wiring once the whole machine is assembled."""
        del system

    # -- run-time ------------------------------------------------------- #

    def refill_tlb(self, system: "System", vaddr: int):
        """Service one CPU TLB miss; returns ``(entry, cycles)``.

        Must insert the entry into ``system.tlb`` and emit the
        ``TLB_MISS`` trace event (when tracing) — both engines treat
        this as the complete software miss path.
        """
        raise NotImplementedError

    def on_shootdown(
        self, system: "System", vstart: int, length: int
    ) -> None:
        """The kernel purged ``[vstart, vstart+length)`` from the CPU
        TLB (remap, unmap, demotion).  Drop backend state naming it."""
        del system, vstart, length

    # -- metrics / checking --------------------------------------------- #

    def register_metrics(self, system: "System") -> None:
        """Register backend-owned sources with ``system.metrics``."""
        del system

    def reach_bytes(self, system: "System") -> int:
        """Bytes of address space reachable without a software refill
        (the cross-backend figure's reach metric).  The baseline is the
        CPU TLB's resident reach; backends with a second-level entry
        pool add whatever that pool can serve."""
        return system.tlb.reach

    def sanitize(self, system: "System", where: str) -> None:
        """Backend-owned invariant checks (read-only); raise
        :class:`~repro.errors.InvariantViolation` on the first break."""
        del system, where
