"""Trace containers, kernel events and synthetic reference generators."""

from .events import (
    HeapGrow,
    KernelEvent,
    MapConventional,
    MapRegion,
    Phase,
    Remap,
)
from .store import (
    SparseChunkIndex,
    StreamedTrace,
    TraceChunkIndex,
    TraceStore,
    TraceWriter,
    trace_address,
)
from .trace import OP_LOAD, OP_STORE, Segment, Trace, make_segment
from .validate import ValidationReport, validate_trace

__all__ = [
    "SparseChunkIndex",
    "StreamedTrace",
    "TraceChunkIndex",
    "TraceStore",
    "TraceWriter",
    "trace_address",
    "HeapGrow",
    "KernelEvent",
    "MapConventional",
    "MapRegion",
    "Phase",
    "Remap",
    "OP_LOAD",
    "OP_STORE",
    "Segment",
    "Trace",
    "make_segment",
    "ValidationReport",
    "validate_trace",
]
