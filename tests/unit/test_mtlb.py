"""Unit tests for the memory-controller TLB."""

import pytest

from repro.core.mtlb import Mtlb, MtlbFault


@pytest.fixture
def table(shadow_table):
    for i in range(0, 2048):
        shadow_table.set_mapping(i, pfn=0x1000 + i)
    return shadow_table


@pytest.fixture
def mtlb(table):
    return Mtlb(table, entries=128, associativity=2)


class TestGeometry:
    def test_sets(self, mtlb):
        assert mtlb.num_sets == 64
        assert mtlb.associativity == 2

    def test_full_associativity(self, table):
        full = Mtlb(table, entries=128, associativity=0)
        assert full.num_sets == 1
        assert full.associativity == 128

    def test_bad_geometry_rejected(self, table):
        with pytest.raises(ValueError):
            Mtlb(table, entries=100, associativity=3)
        with pytest.raises(ValueError):
            Mtlb(table, entries=0)
        with pytest.raises(ValueError):
            Mtlb(table, entries=96, associativity=2)  # 48 sets: not 2^k


class TestAccess:
    def test_miss_then_hit(self, mtlb):
        pfn, filled = mtlb.access(5, is_write=False)
        assert pfn == 0x1005 and filled
        pfn, filled = mtlb.access(5, is_write=False)
        assert pfn == 0x1005 and not filled
        assert mtlb.stats.hits == 1 and mtlb.stats.misses == 1

    def test_fill_reads_table(self, mtlb, table):
        table.set_mapping(7, pfn=0xBEEF)
        pfn, _filled = mtlb.access(7, is_write=False)
        assert pfn == 0xBEEF

    def test_cached_copy_survives_table_change(self, mtlb, table):
        mtlb.access(7, is_write=False)
        table.set_mapping(7, pfn=0xAAAA)
        pfn, filled = mtlb.access(7, is_write=False)
        assert pfn == 0x1007 and not filled  # stale until purged
        mtlb.purge(7)
        pfn, filled = mtlb.access(7, is_write=False)
        assert pfn == 0xAAAA and filled

    def test_read_sets_referenced_only(self, mtlb, table):
        mtlb.access(9, is_write=False)
        entry = table.entry(9)
        assert entry.referenced and not entry.dirty

    def test_write_sets_dirty(self, mtlb, table):
        mtlb.access(9, is_write=True)
        entry = table.entry(9)
        assert entry.dirty and entry.referenced

    def test_fault_on_invalid(self, mtlb, table):
        table.invalidate(9)
        with pytest.raises(MtlbFault) as exc:
            mtlb.access(9, is_write=True)
        assert exc.value.shadow_index == 9 and exc.value.is_write
        # The fault bit is recorded for the OS to find (Section 4).
        assert table.entry(9).fault
        assert mtlb.stats.faults == 1


class TestReplacement:
    def test_capacity_bounded(self, mtlb):
        # 200 distinct pages through a 128-entry MTLB.
        for i in range(200):
            mtlb.access(i, is_write=False)
        assert mtlb.occupancy <= 128

    def test_nru_prefers_unreferenced(self, table):
        mtlb = Mtlb(table, entries=4, associativity=0)
        for i in range(4):
            mtlb.access(i, is_write=False)
        # First eviction resets the NRU epoch (all ways were referenced)
        # and evicts one way; the survivors' bits are now clear.
        mtlb.access(4, is_write=False)
        survivors = set(mtlb.cached_indices()) - {4}
        # Re-reference all survivors but one; that one must be the next
        # victim.
        cold = min(survivors)
        for idx in survivors - {cold}:
            mtlb.access(idx, is_write=False)
        mtlb.access(5, is_write=False)
        cached = set(mtlb.cached_indices())
        assert cold not in cached
        assert (survivors - {cold}) <= cached

    def test_set_isolation(self, table):
        mtlb = Mtlb(table, entries=8, associativity=2)  # 4 sets
        # Indices 0, 4, 8, ... all map to set 0; others untouched.
        for i in range(0, 40, 4):
            mtlb.access(i, is_write=False)
        assert mtlb.occupancy <= 2


class TestPurge:
    def test_purge_range(self, mtlb):
        for i in range(10):
            mtlb.access(i, is_write=False)
        mtlb.purge_range(2, 5)
        cached = set(mtlb.cached_indices())
        assert cached.isdisjoint(range(2, 7))
        assert {0, 1, 7, 8, 9} <= cached

    def test_purge_all(self, mtlb):
        for i in range(10):
            mtlb.access(i, is_write=False)
        mtlb.purge_all()
        assert mtlb.occupancy == 0

    def test_stats_hit_rate(self, mtlb):
        for _ in range(3):
            mtlb.access(1, is_write=False)
        assert mtlb.stats.hit_rate == pytest.approx(2 / 3)
