#!/usr/bin/env python3
"""Paging a superpage one base page at a time (paper Section 2.5).

Conventional superpages force the OS to swap the whole superpage.  The
MTLB keeps per-base-page referenced and dirty bits in the shadow page
table, so the OS can run CLOCK over individual base pages, write only
the dirty ones to disk, and service a later touch of an evicted page
with a precise MTLB fault — all while the CPU TLB's single superpage
entry stays resident.

Run:  python examples/paging_demo.py
"""

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.sim.config import paper_mtlb
from repro.sim.system import System

REGION = 0x0200_0000
SIZE = 64 << 10  # one 64 KB superpage = 16 base pages


def main():
    system = System(paper_mtlb(96))
    kernel = system.kernel
    process = kernel.create_process("paging-demo")
    kernel.sys_map(process, REGION, SIZE)
    report = kernel.sys_remap(process, REGION, SIZE)
    print(f"remapped {report.pages_remapped} base pages into "
          f"{report.superpages_created} shadow superpage "
          f"({report.total_cycles:,} cycles, "
          f"{report.flush_cycles:,} of them cache flushing)\n")

    # The application dirties pages 2 and 5 and reads pages 8..11 —
    # timed accesses so the MTLB sees the fills, plus functional stores
    # so the demo can verify the data later.
    for page in (2, 5):
        system.touch(process, REGION + page * BASE_PAGE_SIZE, is_write=True)
        system.store_word(
            process, REGION + page * BASE_PAGE_SIZE, 0xDADA + page
        )
    for page in (8, 9, 10, 11):
        system.touch(process, REGION + page * BASE_PAGE_SIZE)
    system.flush_virtual_range(process, REGION, SIZE)  # OS cleaning pass

    mapping = process.page_table.lookup(REGION)
    record = kernel.vm.superpage_record(mapping.pbase)
    table = system.shadow_table
    print("per-base-page state the MTLB maintained:")
    for i in range(record.base_pages):
        entry = table.entry(record.first_shadow_index + i)
        flags = []
        if entry.referenced:
            flags.append("referenced")
        if entry.dirty:
            flags.append("DIRTY")
        print(f"  base page {i:2d}: frame {record.pfns[i]:#07x} "
              f"{' '.join(flags)}")

    print("\npaging every base page out:")
    pager = kernel.pager
    for page in range(record.base_pages):
        pager.page_out(record, page)
    print(f"  {pager.stats.dirty_writebacks} disk writes "
          f"(only the dirty pages), "
          f"{pager.stats.clean_drops} clean drops")
    print(f"  a conventional superpage swap would have written all "
          f"{record.base_pages} pages\n")

    print("CPU TLB superpage entry still resident:",
          system.tlb.probe(REGION) is not None)

    # Touching an evicted page raises a precise MTLB fault; the kernel
    # pages just that base page back in (possibly into a new frame).
    value = system.load_word(process, REGION + 5 * BASE_PAGE_SIZE)
    print(f"\ntouched evicted page 5: fault serviced, value intact "
          f"({value:#x}), {pager.stats.pages_in} page brought in, "
          f"new frame {record.pfns[5]:#07x}")


if __name__ == "__main__":
    main()
