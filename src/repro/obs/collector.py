"""Per-run observability bundle: tracer + phase attribution + export.

One :class:`ObsCollector` is built per :class:`~repro.sim.system.System`
when ``SystemConfig.obs.enabled`` is set.  It owns the event tracer and
phase attributor the simulator feeds, and at end of run it *finalises*:
derived histograms (MTLB-miss inter-arrival, remap latency, superpage
sizes) are computed from the event log and registered into the machine's
metrics registry, so one registry holds the whole measurement surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .attribution import PhaseAttributor, PhaseBucket, attribution_csv
from .chrome_trace import build_chrome_trace, write_chrome_trace
from .registry import (
    MTLB_INTERARRIVAL_EDGES,
    MetricsRegistry,
    REMAP_LATENCY_EDGES,
    SUPERPAGE_SIZE_EDGES,
)
from .tracer import EventTracer, TraceEvent, inter_arrival


@dataclass(frozen=True)
class ObsConfig:
    """Observability knobs; the default is fully disabled.

    When disabled no tracer, attributor, or histogram exists and every
    component's tracer attribute stays ``None`` — the only cost left in
    the simulator is one predictable branch per miss-path event.
    """

    enabled: bool = False
    #: Event ring capacity (power of two); oldest events are overwritten.
    ring_capacity: int = 1 << 16
    #: Bucket count for phase-resolved cycle attribution exports.
    attribution_buckets: int = 64

    def __post_init__(self) -> None:
        cap = self.ring_capacity
        if cap <= 0 or cap & (cap - 1):
            raise ValueError("ring_capacity must be a positive power of two")
        if self.attribution_buckets <= 0:
            raise ValueError("attribution_buckets must be positive")


class ObsCollector:
    """Everything one observed run accumulates, plus its exporters."""

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        self.tracer = EventTracer(capacity=config.ring_capacity)
        self.attributor = PhaseAttributor()
        self._finalized = False

    # ------------------------------------------------------------------ #
    # End-of-run finalisation
    # ------------------------------------------------------------------ #

    def observe_superpage_sizes(
        self, registry: MetricsRegistry, sizes_bytes
    ) -> None:
        """Record the live superpage-size distribution (fed by the
        simulator from the kernel's superpage records at harvest)."""
        hist = registry.histogram(
            "obs.superpage_size_bytes", SUPERPAGE_SIZE_EDGES
        )
        hist.observe_many(int(size) for size in sizes_bytes)

    def finalize(self, registry: MetricsRegistry) -> None:
        """Fold derived observations into the metrics registry."""
        if self._finalized:
            return
        self._finalized = True
        tracer = self.tracer

        hist = registry.histogram(
            "obs.mtlb_miss_interarrival_cycles", MTLB_INTERARRIVAL_EDGES
        )
        hist.observe_many(
            int(gap) for gap in inter_arrival(tracer.cycles_of("mtlb_fill"))
        )

        remap_hist = registry.histogram(
            "obs.remap_latency_cycles", REMAP_LATENCY_EDGES
        )
        _pages, latencies = tracer.payloads_of("remap")
        remap_hist.observe_many(int(v) for v in latencies)

        registry.counter("obs.events_emitted").set(tracer.total)
        registry.counter("obs.events_dropped").set(tracer.dropped)
        for site, count in tracer.site_counts().items():
            registry.counter(f"obs.events.{site}").set(count)

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #

    def buckets(self) -> List[PhaseBucket]:
        """Phase-attribution buckets at the configured resolution."""
        return self.attributor.buckets(self.config.attribution_buckets)

    def events(self, site: Optional[str] = None) -> List[TraceEvent]:
        return self.tracer.events(site)

    def chrome_trace(self, label: str = "repro") -> Dict[str, object]:
        """The Chrome-trace-event dict (Perfetto-loadable)."""
        return build_chrome_trace(
            self.tracer.events(), self.buckets(), label=label
        )

    def write_chrome_trace(
        self, path: Union[str, Path], label: str = "repro"
    ) -> Path:
        return write_chrome_trace(
            path, self.tracer.events(), self.buckets(), label=label
        )

    def attribution_csv(self) -> str:
        """The phase-resolved Figure-3 breakdown as CSV."""
        return attribution_csv(self.buckets())

    def top_events(self, site: str, count: int = 5) -> List[TraceEvent]:
        """The *count* largest-payload-b events at one site (e.g. the
        slowest remaps)."""
        return sorted(
            self.events(site), key=lambda e: e.b, reverse=True
        )[:count]
