"""gcc workload model: the cc1 pass of gcc 2.5.3 compiling insn-recog.c.

cc1 is pass-structured: per function it lexes/parses the source into an
AST, probes symbol/identifier hash tables, generates RTL by walking the
AST, runs optimisation passes that re-walk the RTL lists, and allocates
registers.  insn-recog.c is machine-generated — thousands of small,
similar functions — so the heap (all via the modified ``sbrk()``, which
performs *all* superpage creation for gcc in the paper) grows steadily as
ASTs and RTL accumulate, reaching roughly 10 MB.

Model, per compiled function:

* **parse** — sequential reads of the source buffer interleaved with
  bump-allocated AST node writes and random probes of the ~768 KB symbol
  table region;
* **rtl** — a walk of the function's AST in allocation order with
  scattered operand reads across the recently allocated heap, writing
  RTL nodes at the allocation frontier;
* **optimize** — two re-walks of the function's RTL with scattered
  use-def reads over the whole accumulated heap (where the large
  footprint bites).

``scale`` multiplies the number of functions compiled (the heap footprint
grows with it, as it does through a real cc1 run).
"""

from __future__ import annotations

import numpy as np

from ..trace import synth
from ..trace.events import MapRegion, Phase
from ..trace.trace import Trace, make_segment
from .base import HeapBuilder, Workload, register

#: Number of functions in the (machine-generated) translation unit.
FUNCTIONS = 360
#: AST/RTL nodes per function and node size (~35 KB of heap per function,
#: so a full run accumulates ~12 MB).
AST_NODES = 260
RTL_NODES = 300
NODE_BYTES = 64

#: Static regions.
SOURCE_BASE = 0x0200_0000
SOURCE_BYTES = 1 << 20  # insn-recog.c is ~1 MB of C
SYMTAB_BASE = 0x0300_0000
SYMTAB_BYTES = 512 << 10

#: Heap policy: gcc's modified sbrk with a large initial pool.
HEAP_BASE = 0x1000_0000
INITIAL_PREALLOC = 4 << 20
INCREMENT = 2 << 20

GAP = 3
#: cc1's text is large; its instruction pages matter (Section 3.2's
#: micro-ITLB model).
TEXT_BYTES = 1536 << 10


@register
class Gcc(Workload):
    """The cc1 model; see the module docstring."""

    name = "gcc"
    description = (
        "cc1 compiling insn-recog.c: per-function parse/RTL/optimise "
        "passes, ~10MB heap grown through the modified sbrk"
    )

    def build(self, scale: float = 1.0, seed: int = 1998) -> Trace:
        rng = self._rng(seed)
        functions = self._scaled(FUNCTIONS, scale, minimum=8)
        trace = Trace(self.name, text_size=TEXT_BYTES)
        trace.add(MapRegion(SOURCE_BASE, SOURCE_BYTES))
        trace.add(MapRegion(SYMTAB_BASE, SYMTAB_BYTES))
        heap = HeapBuilder(
            trace,
            heap_base=HEAP_BASE,
            initial_prealloc=INITIAL_PREALLOC,
            increment=INCREMENT,
        )

        src_cursor = 0
        for f in range(functions):
            if f % 60 == 0:
                trace.add(Phase(f"function-{f}"))
            src_cursor = self._compile_function(
                trace, heap, rng, f, src_cursor
            )
        return trace

    def _compile_function(
        self,
        trace: Trace,
        heap: HeapBuilder,
        rng: np.random.Generator,
        f: int,
        src_cursor: int,
    ) -> int:
        ast_base = heap.alloc(AST_NODES * NODE_BYTES)
        rtl_base = heap.alloc(RTL_NODES * NODE_BYTES)

        # --- parse: source reads + AST writes + symbol probes ---------- #
        n = AST_NODES
        src = SOURCE_BASE + (
            (src_cursor + np.arange(n, dtype=np.int64) * 24) % SOURCE_BYTES
        )
        ast_writes = ast_base + np.arange(n, dtype=np.int64) * NODE_BYTES
        # Identifier lookups hit a hot core of the symbol table (common
        # identifiers) with a uniform tail.
        sym = synth.hot_cold(
            rng, SYMTAB_BASE, SYMTAB_BYTES, n,
            hot_pages=56, hot_fraction=0.8, hot_seed=31,
        )
        parse = synth.interleave(src, ast_writes, sym)
        pw = np.zeros(len(parse), dtype=bool)
        pw[1::3] = True  # AST node writes
        trace.add(
            make_segment(f"parse-{f}", parse, write_mask=pw, gap=GAP,
                         text_pages=120)
        )

        # --- rtl generation: AST walk + scattered operand reads -------- #
        m = RTL_NODES
        ast_walk = ast_base + (
            np.arange(m, dtype=np.int64) % AST_NODES
        ) * NODE_BYTES
        recent_span = max(heap.brk - HEAP_BASE, 1 << 16)
        window = min(recent_span, 512 << 10)
        operands = synth.uniform_random(
            rng, heap.brk - window, window, m, align=8
        )
        rtl_writes = rtl_base + np.arange(m, dtype=np.int64) * NODE_BYTES
        rtl = synth.interleave(ast_walk, operands, rtl_writes)
        rw = np.zeros(len(rtl), dtype=bool)
        rw[2::3] = True
        trace.add(
            make_segment(f"rtl-{f}", rtl, write_mask=rw, gap=GAP,
                         text_pages=180)
        )

        # --- optimisation: RTL re-walks with whole-heap use-def reads -- #
        heap_span = max(heap.brk - HEAP_BASE, 1 << 16)
        window = min(heap_span, 640 << 10)
        for opt_pass in range(2):
            walk = rtl_base + (
                np.arange(m, dtype=np.int64) % RTL_NODES
            ) * NODE_BYTES
            # Use-def chains point mostly at recently created RTL, with a
            # uniform tail over everything accumulated so far.
            near = synth.uniform_random(
                rng, heap.brk - window, window, m, align=8
            )
            far = synth.uniform_random(
                rng, HEAP_BASE, heap_span, m, align=8
            )
            take_far = rng.random(m) < 0.25
            usedef = np.where(take_far, far, near)
            opt = synth.interleave(walk, usedef)
            ow = np.zeros(len(opt), dtype=bool)
            ow[0::8] = True  # occasional in-place RTL rewrites
            trace.add(
                make_segment(
                    f"opt{opt_pass}-{f}", opt, write_mask=ow, gap=GAP,
                    text_pages=200,
                )
            )
        return src_cursor + AST_NODES * 24
