"""Unit tests for the repro-bench CLI (fast commands only)."""

import pytest

from repro.cli import EXPERIMENTS, main
from repro.errors import ReferenceBudgetExceeded


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(EXPERIMENTS) <= set(out)

    def test_fig2_runs_and_passes(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "shape checks: all passed" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_quick_flag_accepted(self, capsys):
        assert main(["fig2", "--quick"]) == 0


class TestRobustnessFlags:
    def test_budget_violation_aborts_without_keep_going(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        with pytest.raises(ReferenceBudgetExceeded):
            main(["fig3", "--quick", "--max-refs", "10"])

    def test_keep_going_reports_failure_and_continues(
        self, monkeypatch, tmp_path, capsys
    ):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        status = main(
            ["fig3", "--quick", "--keep-going", "--max-refs", "10"]
        )
        assert status != 0
        err = capsys.readouterr().err
        assert "EXPERIMENT FAILED: fig3" in err
        assert "ReferenceBudgetExceeded" in err


@pytest.mark.faults
class TestQuickSmoke:
    def test_fig3_quick_keep_going_smoke(
        self, monkeypatch, tmp_path, capsys
    ):
        """The documented smoke invocation:
        ``REPRO_BENCH_QUICK=1 repro-bench fig3 --keep-going``."""
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        # fig3 writes BENCH_figure3.json and BENCH_perf.json into the
        # cwd; keep them out of the repo checkout.
        monkeypatch.chdir(tmp_path)
        status = main(["fig3", "--keep-going"])
        out = capsys.readouterr().out
        # Quick scales are too small for every paper shape check, so a
        # non-zero status is acceptable — the point is that the whole
        # matrix completes and renders rather than crashing.
        assert status in (0, 1)
        assert "Figure 3" in out
        assert "MTLB improvement at the 96-entry base:" in out
        # The matrix finished, so its checkpoint was cleaned up.
        assert not (tmp_path / "checkpoint_fig3.json").exists()


class TestRequireIdentical:
    """`repro metrics diff --require-identical` is the engine
    equivalence gate: ANY numeric delta (even below the regression
    threshold) or run-set mismatch must fail."""

    @staticmethod
    def snapshot(tmp_path, name, runs):
        from repro.obs import SCHEMA, write_snapshot

        return str(
            write_snapshot(
                {"schema": SCHEMA, "label": name, "meta": {}, "runs": runs},
                tmp_path / f"{name}.json",
            )
        )

    def test_identical_snapshots_pass(self, tmp_path, capsys):
        from repro.cli import repro_main

        runs = {"em3d|tlb96": {"metrics": {"total_cycles": 1000}}}
        a = self.snapshot(tmp_path, "a", runs)
        b = self.snapshot(tmp_path, "b", runs)
        assert repro_main(
            ["metrics", "diff", a, b, "--require-identical"]
        ) == 0
        assert "identical" in capsys.readouterr().out

    def test_sub_threshold_delta_fails_only_with_flag(
        self, tmp_path, capsys
    ):
        from repro.cli import repro_main

        a = self.snapshot(
            tmp_path, "a",
            {"em3d|tlb96": {"metrics": {"total_cycles": 100000}}},
        )
        b = self.snapshot(
            tmp_path, "b",
            {"em3d|tlb96": {"metrics": {"total_cycles": 100001}}},
        )
        # +0.001% is inside the 2% regression threshold...
        assert repro_main(["metrics", "diff", a, b]) == 0
        # ...but not bit-identical.
        assert repro_main(
            ["metrics", "diff", a, b, "--require-identical"]
        ) == 1
        assert "differ" in capsys.readouterr().err

    def test_run_set_mismatch_fails(self, tmp_path):
        from repro.cli import repro_main

        runs = {"em3d|tlb96": {"metrics": {"total_cycles": 1000}}}
        both = dict(runs)
        both["gcc|tlb96"] = {"metrics": {"total_cycles": 2000}}
        a = self.snapshot(tmp_path, "a", runs)
        b = self.snapshot(tmp_path, "b", both)
        assert repro_main(
            ["metrics", "diff", a, b, "--require-identical"]
        ) == 1


class TestEngineAndJobsFlags:
    def test_engine_flag_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["fig2", "--engine", "turbo"])

    def test_jobs_and_engine_accepted(self, capsys):
        # fig2 is static (no matrix), so this just checks flag parsing
        # and context construction.
        assert main(["fig2", "--jobs", "2", "--engine", "vector"]) == 0
