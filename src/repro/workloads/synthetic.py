"""Synthetic workload family: parameterised TLB-pressure generators.

Beyond the five paper programs, the registry offers three synthetic
workloads for sensitivity studies and for users exploring their own
parameter spaces:

* ``scatter`` — uniform random accesses over an 8 MB region (worst-case
  TLB and MTLB locality; the A1 ablation's pattern);
* ``stream``  — sequential sweeps over a 16 MB region (best-case
  locality: one TLB miss per page, prefetcher-friendly);
* ``zipf``    — skewed random access over 8 MB (realistic hot/cold mix).

Each maps and remaps its region up front, so the same trace runs on
conventional and MTLB machines like the paper workloads do.  ``scale``
multiplies the reference count; footprints are fixed.
"""

from __future__ import annotations

import numpy as np

from ..trace import synth
from ..trace.events import MapRegion, Remap
from ..trace.trace import Trace, make_segment
from .base import Workload, register

REGION_BASE = 0x2000_0000
GAP = 3
REFS = 2_000_000


class _SyntheticBase(Workload):
    """Shared scaffolding for the synthetic family."""

    region_bytes = 8 << 20

    def build(self, scale: float = 1.0, seed: int = 1998) -> Trace:
        rng = self._rng(seed)
        refs = self._scaled(REFS, scale, minimum=1024)
        trace = Trace(self.name, text_size=32 << 10)
        trace.add(MapRegion(REGION_BASE, self.region_bytes))
        trace.add(Remap(REGION_BASE, self.region_bytes))
        vaddrs = self._addresses(rng, refs)
        writes = rng.random(refs) < 0.25
        trace.add(
            make_segment(
                "body", vaddrs, write_mask=writes, gap=GAP, text_pages=2
            )
        )
        return trace

    def stream(self, scale: float = 1.0, seed: int = 1998):
        """True streaming: the map/remap events are yielded before the
        reference arrays are computed, so a consumer (and the trace
        store's tee) sees the first items immediately.  The rng call
        order matches :meth:`build` exactly, keeping the streamed items
        bit-identical to the eager ones.
        """
        rng = self._rng(seed)
        refs = self._scaled(REFS, scale, minimum=1024)
        shell = Trace(self.name, text_size=32 << 10)

        def items():
            yield MapRegion(REGION_BASE, self.region_bytes)
            yield Remap(REGION_BASE, self.region_bytes)
            vaddrs = self._addresses(rng, refs)
            writes = rng.random(refs) < 0.25
            yield make_segment(
                "body", vaddrs, write_mask=writes, gap=GAP, text_pages=2
            )

        return shell, items()

    def _addresses(self, rng, refs: int) -> np.ndarray:
        raise NotImplementedError


@register
class Scatter(_SyntheticBase):
    """Uniform random over 8 MB: the TLB's worst case."""

    name = "scatter"
    description = "uniform random accesses over an 8MB region"

    def _addresses(self, rng, refs: int) -> np.ndarray:
        return synth.uniform_random(
            rng, REGION_BASE, self.region_bytes, refs
        )


@register
class Stream(_SyntheticBase):
    """Sequential sweeps over 16 MB: one miss per page, then none."""

    name = "stream"
    description = "sequential sweeps over a 16MB region"
    region_bytes = 16 << 20

    def _addresses(self, rng, refs: int) -> np.ndarray:
        return synth.sequential(
            REGION_BASE, self.region_bytes, stride=8, count=refs
        )


@register
class Zipf(_SyntheticBase):
    """Zipf-skewed random over 8 MB: hot head, long cold tail."""

    name = "zipf"
    description = "zipf-skewed random accesses over an 8MB region"

    def _addresses(self, rng, refs: int) -> np.ndarray:
        return synth.zipf_random(
            rng, REGION_BASE, self.region_bytes, refs, s=1.2
        )
