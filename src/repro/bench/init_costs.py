"""Experiment E5 — Section 3.3 initialisation costs.

The paper reports (all at 240 MHz CPU cycles):

* cache-flushing a remapped 4 KB page costs ~**1400 cycles**;
* copying a 4 KB page whose source is warm in the cache costs
  ~**11,400 cycles** — the cost conventional superpage creation would
  pay, and shadow remapping avoids;
* em3d's explicit remap of 1120 pages costs **1,659,154 cycles** total:
  **1,497,067** of cache flushing and **162,087** of everything else.

This bench measures all three on the simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.addrspace import BASE_PAGE_SIZE, CACHE_LINE_SIZE
from ..sim.config import paper_mtlb
from ..sim.results import render_table
from ..sim.system import System
from ..trace.events import MapRegion
from ..trace.trace import Trace, make_segment
from .runner import BenchContext

#: Paper reference numbers.
PAPER_FLUSH_PER_PAGE = 1400
PAPER_COPY_PER_PAGE = 11400
PAPER_EM3D_REMAP_TOTAL = 1_659_154
PAPER_EM3D_REMAP_FLUSH = 1_497_067
PAPER_EM3D_REMAP_OTHER = 162_087
PAPER_EM3D_REMAP_PAGES = 1120


@dataclass
class InitCostResult:
    """Measured initialisation costs."""

    flush_per_page: float
    copy_per_page: float
    em3d_remap_total: int
    em3d_remap_flush: int
    em3d_remap_other: int
    em3d_remap_pages: int
    report: str
    shape_errors: List[str]


def measure_flush_per_page(pages: int = 64, dirty_fraction: float = 0.5) -> float:
    """Average cycles to flush one warm 4 KB page from the cache.

    Warms *pages* pages (a mix of clean and dirty lines, as a remapped
    data region typically is), then uses the machine's costed flush
    primitive — the same code path ``remap()`` runs.
    """
    system = System(paper_mtlb(96))
    process = system.kernel.create_process("flushbench")
    base = 0x0200_0000
    system.kernel.sys_map(process, base, pages * BASE_PAGE_SIZE)
    lines_per_page = BASE_PAGE_SIZE // CACHE_LINE_SIZE
    dirty_every = max(1, int(round(1.0 / dirty_fraction)))
    for p in range(pages):
        for li in range(lines_per_page):
            vaddr = base + p * BASE_PAGE_SIZE + li * CACHE_LINE_SIZE
            paddr = process.page_table.translate(vaddr)
            system.cache.access(vaddr, paddr, li % dirty_every == 0)
    cycles, _dirty = system.flush_virtual_range(
        process, base, pages * BASE_PAGE_SIZE
    )
    return cycles / pages


def measure_copy_per_page(pages: int = 32) -> float:
    """Average cycles to copy one 4 KB page with a warm source.

    Runs an actual word-by-word copy loop through the simulator: load
    each source word (cache-warm), store it to the destination (cold),
    with a few address-arithmetic instructions per word.
    """
    trace = Trace("copybench")
    src = 0x0200_0000
    # Offset the destination by half the cache so source and destination
    # lines do not alias to the same direct-mapped sets (a kernel page
    # copier would pick its bounce buffers the same way).
    dst = 0x0304_0000
    nbytes = pages * BASE_PAGE_SIZE
    trace.add(MapRegion(src, nbytes))
    trace.add(MapRegion(dst, nbytes))
    words = nbytes // 8
    offsets = np.arange(words, dtype=np.int64) * 8
    # Warm the source.
    trace.add(make_segment("warm", src + offsets, gap=0))
    # The copy loop: load src word, store dst word.
    vaddrs = np.empty(2 * words, dtype=np.int64)
    vaddrs[0::2] = src + offsets
    vaddrs[1::2] = dst + offsets
    writes = np.zeros(2 * words, dtype=bool)
    writes[1::2] = True
    trace.add(make_segment("copy", vaddrs, write_mask=writes, gap=3))
    system = System(paper_mtlb(96))
    system.run(trace)
    copy_cycles = dict(system.segment_cycles)["copy"]
    return copy_cycles / pages


def measure_em3d_remap(
    context: Optional[BenchContext] = None,
) -> InitCostResult:
    """Run em3d and break down its remap() cost as the paper does."""
    context = context or BenchContext()
    result = context.run("em3d", paper_mtlb(96))
    stats = result.stats
    flush_pp = measure_flush_per_page()
    copy_pp = measure_copy_per_page()
    total = stats.remap_cycles
    flush = stats.remap_flush_cycles
    other = total - flush
    pages = stats.remap_pages
    rows = [
        ["flush one warm 4KB page", f"{flush_pp:.0f}",
         f"{PAPER_FLUSH_PER_PAGE}"],
        ["copy one warm 4KB page", f"{copy_pp:.0f}",
         f"{PAPER_COPY_PER_PAGE}"],
        ["em3d remap: pages", f"{pages}", f"{PAPER_EM3D_REMAP_PAGES}"],
        ["em3d remap: total cycles", f"{total}",
         f"{PAPER_EM3D_REMAP_TOTAL}"],
        ["em3d remap: flush cycles", f"{flush}",
         f"{PAPER_EM3D_REMAP_FLUSH}"],
        ["em3d remap: other cycles", f"{other}",
         f"{PAPER_EM3D_REMAP_OTHER}"],
    ]
    report = render_table(
        ["quantity", "measured", "paper"],
        rows,
        title="Section 3.3 initialisation costs",
    )
    errors = _check(flush_pp, copy_pp, total, flush, other, pages)
    return InitCostResult(
        flush_per_page=flush_pp,
        copy_per_page=copy_pp,
        em3d_remap_total=total,
        em3d_remap_flush=flush,
        em3d_remap_other=other,
        em3d_remap_pages=pages,
        report=report,
        shape_errors=errors,
    )


def _check(
    flush_pp: float,
    copy_pp: float,
    total: int,
    flush: int,
    other: int,
    pages: int,
) -> List[str]:
    errors: List[str] = []
    if not 0.6 * PAPER_FLUSH_PER_PAGE <= flush_pp <= 1.4 * PAPER_FLUSH_PER_PAGE:
        errors.append(f"flush/page {flush_pp:.0f} far from paper 1400")
    if not 0.5 * PAPER_COPY_PER_PAGE <= copy_pp <= 1.6 * PAPER_COPY_PER_PAGE:
        errors.append(f"copy/page {copy_pp:.0f} far from paper 11400")
    if copy_pp < 4 * flush_pp:
        errors.append(
            "copying is not clearly more expensive than flushing "
            "(the paper's central avoided cost)"
        )
    if pages != PAPER_EM3D_REMAP_PAGES:
        errors.append(f"em3d remapped {pages} pages, paper says 1120")
    if total and not 0.75 <= flush / total <= 0.97:
        errors.append(
            f"flush share of remap is {flush / total:.2f}; paper's is 0.90"
        )
    return errors
