"""A5 — MMC stream buffers (Section 6 future work).

A small sequential-stream prefetcher behind the MTLB's retranslation
hides DRAM latency for radix's streaming phases.
"""

from repro.bench import run_stream_buffer_ablation


def test_stream_buffer_ablation(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_stream_buffer_ablation(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
