"""Unit tests for the micro-ITLB, block TLB and software miss handler."""

import pytest

from repro.cpu.block_tlb import BlockTlb
from repro.cpu.micro_itlb import MicroItlb
from repro.cpu.miss_handler import (
    MissHandlerCosts,
    PageFault,
    SoftwareMissHandler,
)
from repro.cpu.tlb import TlbEntry
from repro.os_model.hpt import HashedPageTable
from repro.os_model.page_table import PageTable


class TestMicroItlb:
    def test_empty_misses(self):
        itlb = MicroItlb()
        assert itlb.lookup(0x1000) is None
        assert itlb.stats.misses == 1

    def test_refill_then_hit(self):
        itlb = MicroItlb()
        entry = TlbEntry(vbase=0x1000, pbase=0x9000, size=4096)
        itlb.refill(entry)
        assert itlb.lookup(0x1FFF) is entry
        assert itlb.lookup(0x2000) is None

    def test_invalidate(self):
        itlb = MicroItlb()
        itlb.refill(TlbEntry(vbase=0x1000, pbase=0x9000, size=4096))
        itlb.invalidate()
        assert itlb.lookup(0x1000) is None


class TestBlockTlb:
    def test_covers_kernel_range(self):
        block = BlockTlb(vbase=0, pbase=0, size=4 << 20)
        assert block.lookup(0) is not None
        assert block.lookup((4 << 20) - 1) is not None
        assert block.lookup(4 << 20) is None

    def test_translate(self):
        block = BlockTlb(vbase=0x1000, pbase=0x8_0000, size=8192)
        assert block.translate(0x1234) == 0x8_0234
        with pytest.raises(ValueError):
            block.translate(0x4000)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockTlb(vbase=1, pbase=0, size=4096)
        with pytest.raises(ValueError):
            BlockTlb(vbase=0, pbase=0, size=100)


class _AccessRecorder:
    """Records kernel accesses and charges a fixed latency."""

    def __init__(self, latency=10):
        self.latency = latency
        self.accesses = []

    def __call__(self, paddr, is_write):
        self.accesses.append((paddr, is_write))
        return self.latency


@pytest.fixture
def handler_setup():
    page_table = PageTable()
    mapping = page_table.map_base_page(0x0200_0000, pfn=0x123)
    hpt = HashedPageTable(
        base_paddr=0x10_0000,
        resolver=lambda vpn: page_table.lookup(vpn << 12),
    )
    hpt.preload(0x0200_0000 >> 12, mapping)
    return page_table, hpt


class TestSoftwareMissHandler:
    def test_refill_from_hpt(self, handler_setup):
        _pt, hpt = handler_setup
        handler = SoftwareMissHandler(hpt)
        access = _AccessRecorder()
        result = handler.handle(0x0200_0123, access)
        assert result.entry.vbase == 0x0200_0000
        assert result.entry.pbase == 0x123 << 12
        # One probe load of the HPT entry, at its physical address.
        assert len(access.accesses) == 1
        assert access.accesses[0][0] >= 0x10_0000

    def test_cycle_accounting(self, handler_setup):
        _pt, hpt = handler_setup
        costs = MissHandlerCosts(
            trap_overhead=20, hash_compute=5, probe_compare=4, tlb_insert=6
        )
        handler = SoftwareMissHandler(hpt, costs)
        result = handler.handle(0x0200_0000, _AccessRecorder(latency=7))
        assert result.cycles == 20 + 5 + (4 + 7) + 6

    def test_hpt_miss_walks_segments(self, handler_setup):
        page_table, hpt = handler_setup
        page_table.map_base_page(0x0300_0000, pfn=0x77)  # not preloaded
        handler = SoftwareMissHandler(hpt)
        access = _AccessRecorder()
        result = handler.handle(0x0300_0008, access)
        assert result.entry.pbase == 0x77 << 12
        assert handler.stats.segment_walks == 1
        assert result.cycles > handler.costs.segment_walk

    def test_page_fault_when_unmapped(self, handler_setup):
        _pt, hpt = handler_setup
        handler = SoftwareMissHandler(hpt)
        with pytest.raises(PageFault):
            handler.handle(0x0900_0000, _AccessRecorder())

    def test_superpage_refill(self, handler_setup):
        page_table, hpt = handler_setup
        mapping = page_table.map_superpage(
            0x0400_0000, 0x8000_0000, 64 << 10
        )
        hpt.preload(0x0400_2000 >> 12, mapping)
        handler = SoftwareMissHandler(hpt)
        result = handler.handle(0x0400_2468, _AccessRecorder())
        assert result.entry.size == 64 << 10
        assert result.entry.pbase == 0x8000_0000
