"""Phase-resolved cycle attribution (Figure 3 over simulated time).

``RunStats`` can only say where a whole run's cycles went; this module
records *when*.  The simulator feeds the attributor a monotone stream of
cumulative cycle-category totals — one sample at every segment boundary
and after every kernel event — and the attributor resamples that stream
into fixed-width buckets of simulated time, each holding the four
Figure-3 category deltas (instruction / memory stall / TLB miss /
kernel).  Buckets are what the Chrome-trace and CSV exporters consume.

Sampling at control-flow boundaries rather than on a cycle timer keeps
the cost proportional to the number of segments and kernel events (a few
thousand per run), not to references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: The four Figure-3 cycle categories, in reporting order.
CATEGORIES = ("instruction", "memory_stall", "tlb_miss", "kernel")


@dataclass(frozen=True)
class PhaseSample:
    """Cumulative cycle-category totals at one sample point."""

    cycle: int
    instruction: int
    memory_stall: int
    tlb_miss: int
    kernel: int

    @property
    def total(self) -> int:
        return (
            self.instruction + self.memory_stall
            + self.tlb_miss + self.kernel
        )


@dataclass(frozen=True)
class PhaseBucket:
    """Category cycle deltas over one slice of simulated time."""

    start_cycle: int
    end_cycle: int
    instruction: int
    memory_stall: int
    tlb_miss: int
    kernel: int

    @property
    def total(self) -> int:
        return (
            self.instruction + self.memory_stall
            + self.tlb_miss + self.kernel
        )

    def fraction(self, category: str) -> float:
        """One category's share of this bucket (0.0 for empty buckets)."""
        total = self.total
        return getattr(self, category) / total if total else 0.0


class PhaseAttributor:
    """Collects cumulative samples; buckets them on demand."""

    def __init__(self) -> None:
        self.samples: List[PhaseSample] = []

    def sample(
        self,
        instruction: int,
        memory_stall: int,
        tlb_miss: int,
        kernel: int,
    ) -> None:
        """Record the current cumulative category totals."""
        self.samples.append(
            PhaseSample(
                cycle=instruction + memory_stall + tlb_miss + kernel,
                instruction=instruction,
                memory_stall=memory_stall,
                tlb_miss=tlb_miss,
                kernel=kernel,
            )
        )

    def __len__(self) -> int:
        return len(self.samples)

    def buckets(self, count: int = 64) -> List[PhaseBucket]:
        """Resample into *count* equal-width buckets of simulated time.

        Category totals between two samples are attributed linearly
        across the interval they accrued over, so a long segment spreads
        its cycles over every bucket it spans instead of spiking the
        bucket its boundary lands in.
        """
        if count <= 0:
            raise ValueError("bucket count must be positive")
        if len(self.samples) < 2:
            return []
        end = self.samples[-1].cycle
        start = self.samples[0].cycle
        span = end - start
        if span <= 0:
            return []
        width = span / count
        # Per-bucket float accumulators, one row per category.
        acc = [[0.0] * count for _ in CATEGORIES]
        for prev, cur in zip(self.samples, self.samples[1:]):
            seg_span = cur.cycle - prev.cycle
            if seg_span <= 0:
                continue
            deltas = [
                getattr(cur, cat) - getattr(prev, cat)
                for cat in CATEGORIES
            ]
            # Walk the buckets this interval overlaps.
            first = min(int((prev.cycle - start) / width), count - 1)
            last = min(int((cur.cycle - start) / width), count - 1)
            for b in range(first, last + 1):
                lo = max(prev.cycle, start + b * width)
                hi = min(cur.cycle, start + (b + 1) * width)
                if b == count - 1:
                    hi = min(cur.cycle, end)
                overlap = max(0.0, hi - lo)
                share = overlap / seg_span
                for c in range(len(CATEGORIES)):
                    acc[c][b] += deltas[c] * share
        # Integerise by cumulative rounding so each category's bucket
        # deltas telescope to exactly its end-to-end cycle total.
        rows: List[List[int]] = []
        for c, cat in enumerate(CATEGORIES):
            total = getattr(self.samples[-1], cat) - getattr(
                self.samples[0], cat
            )
            cum = 0.0
            emitted = 0
            ints: List[int] = []
            for b in range(count):
                cum += acc[c][b]
                target = int(round(cum))
                ints.append(target - emitted)
                emitted = target
            ints[-1] += total - emitted
            rows.append(ints)
        out: List[PhaseBucket] = []
        for b in range(count):
            out.append(
                PhaseBucket(
                    start_cycle=int(start + b * width),
                    end_cycle=int(start + (b + 1) * width),
                    instruction=rows[0][b],
                    memory_stall=rows[1][b],
                    tlb_miss=rows[2][b],
                    kernel=rows[3][b],
                )
            )
        return out


def attribution_csv(buckets: List[PhaseBucket]) -> str:
    """Render buckets as CSV (one row per bucket, header included)."""
    lines = ["start_cycle,end_cycle," + ",".join(CATEGORIES)]
    for b in buckets:
        lines.append(
            f"{b.start_cycle},{b.end_cycle},{b.instruction},"
            f"{b.memory_stall},{b.tlb_miss},{b.kernel}"
        )
    return "\n".join(lines) + "\n"
