"""B1 — cross-backend comparison (``repro-bench backends``).

One harness, three translation architectures (DESIGN.md §16): the
paper's MTLB/shadow-superpage design, the range-coalescing TLB
(arXiv:1908.08774), and Victima's cache-resident entry pool
(arXiv:2310.04158), each run over the five paper workloads on the same
traces.  Rows per workload:

* ``mtlb`` — the conventional baseline (96-entry TLB, MTLB disabled);
* ``mtlb96`` — the paper's design point (shadow superpages + MTLB);
* ``coalesced`` — range coalescing on the default *shuffled* free list
  (real contiguity is scarce, so this shows the backend's dependence on
  OS allocation order);
* ``coalesced+contig`` — the same backend with ``fragmentation="none"``
  (sequential frames), its best case;
* ``victima`` — the entry pool on the shuffled free list.

Each cell reports runtime, TLB miss rate, and end-of-run translation
reach (:meth:`TranslationBackend.reach_bytes`), and the snapshot rows
land in ``BENCH_backends.json`` with reach/wall stashed under
``extra.*`` metrics.

Shape checks encode the model's designed invariants rather than
paper-calibrated numbers: Victima never changes the CPU TLB's miss
count (pool hits only cheapen refills), coalescing never increases it,
and contiguous frames never coalesce worse than shuffled ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..sim.config import SystemConfig, paper_base, paper_mtlb
from ..sim.results import RunResult, render_table
from ..sim.system import System
from ..workloads import PAPER_SUITE
from .runner import BenchContext


def backend_rows() -> List[Tuple[str, SystemConfig]]:
    """The (row label, config) matrix, one machine per backend variant."""
    return [
        ("mtlb", paper_base()),
        ("mtlb96", paper_mtlb(96)),
        ("coalesced", replace(paper_base(), backend="coalesced")),
        (
            "coalesced+contig",
            replace(
                paper_base(), backend="coalesced", fragmentation="none"
            ),
        ),
        ("victima", replace(paper_base(), backend="victima")),
    ]


@dataclass
class BackendsResult:
    """Outcome of B1: per (workload, row) results + snapshot rows."""

    runs: Dict[Tuple[str, str], RunResult]
    report: str
    shape_errors: List[str]


def run_backends_bench(
    context: BenchContext, progress: bool = False
) -> BackendsResult:
    """Run the cross-backend matrix over the five paper workloads."""
    runs: Dict[Tuple[str, str], RunResult] = {}
    reach: Dict[Tuple[str, str], int] = {}
    rows = backend_rows()
    for workload in PAPER_SUITE:
        trace = context.trace(workload)
        for label, config in rows:
            if progress:
                print(f"  {workload} / {label} ...", flush=True)
            if context.engine is not None:
                config = replace(config, engine=context.engine)
            if context.sanitize:
                config = replace(config, sanitize=True)
            system = System(config)
            system.reference_budget = context.max_references
            start = time.perf_counter()
            result = system.run(trace)
            wall = time.perf_counter() - start
            cell_reach = system.backend.reach_bytes(system)
            # Snapshot plumbing: RunStats.extra rides into snapshot
            # metrics as ``extra.*`` keys, which is how reach and wall
            # reach BENCH_backends.json without new schema.
            result.stats.extra["backend_reach_bytes"] = cell_reach
            result.stats.extra["bench_wall_seconds"] = round(wall, 3)
            # Row labels (not config.label) key the snapshot: the two
            # coalesced variants share a config label and must not
            # collide in BENCH_backends.json.
            runs[(workload, label)] = replace(result, config_label=label)
            reach[(workload, label)] = cell_reach

    table_rows = []
    for workload in PAPER_SUITE:
        for label, _ in rows:
            result = runs[(workload, label)]
            stats = result.stats
            table_rows.append([
                workload,
                label,
                f"{stats.total_cycles:,}",
                f"{stats.tlb_miss_rate * 100:.3f}%",
                f"{reach[(workload, label)] / 1024:.0f} KB",
                result.engine,
            ])
    report = render_table(
        ["workload", "backend", "cycles", "miss rate", "reach", "engine"],
        table_rows,
        title="B1: translation backends under one harness",
    )

    errors: List[str] = []
    for workload in PAPER_SUITE:
        base = runs[(workload, "mtlb")].stats
        vict = runs[(workload, "victima")].stats
        coal = runs[(workload, "coalesced")].stats
        contig = runs[(workload, "coalesced+contig")].stats
        if vict.tlb_misses != base.tlb_misses:
            errors.append(
                f"{workload}: victima changed the CPU TLB miss count "
                f"({vict.tlb_misses} vs {base.tlb_misses}); the pool "
                "must only cheapen refills"
            )
        if vict.total_cycles > base.total_cycles:
            errors.append(
                f"{workload}: victima ran slower than the conventional "
                f"baseline ({vict.total_cycles:,} vs "
                f"{base.total_cycles:,})"
            )
        if coal.tlb_misses > base.tlb_misses:
            errors.append(
                f"{workload}: coalescing increased TLB misses "
                f"({coal.tlb_misses} vs {base.tlb_misses})"
            )
        if contig.tlb_misses > coal.tlb_misses:
            errors.append(
                f"{workload}: contiguous frames coalesced worse than "
                f"shuffled ones ({contig.tlb_misses} vs "
                f"{coal.tlb_misses} misses)"
            )
        for label, _ in rows:
            if runs[(workload, label)].stats.total_cycles <= 0:
                errors.append(f"{workload}/{label}: no cycles simulated")
    return BackendsResult(runs=runs, report=report, shape_errors=errors)
