"""Unit tests for the modified sbrk, the MiniKernel facade and processes."""

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.os_model.process import Process
from repro.os_model.syscalls import SbrkAllocator


@pytest.fixture
def machine(mtlb_system):
    process = mtlb_system.kernel.create_process("sbrktest")
    return mtlb_system, process


class TestSbrk:
    def test_pool_preallocation(self, machine):
        system, process = machine
        alloc = SbrkAllocator(
            system.kernel.vm, process,
            initial_prealloc=1 << 20, increment=256 << 10,
        )
        first = alloc.sbrk(64)
        assert first == process.heap_base
        assert alloc.stats.growths == 1
        # Small allocations come from the pool without kernel work (the
        # first call is also served from the pool after its growth).
        for _ in range(100):
            alloc.sbrk(64)
        assert alloc.stats.growths == 1
        assert alloc.stats.pool_hits == 101

    def test_growth_uses_increment(self, machine):
        system, process = machine
        alloc = SbrkAllocator(
            system.kernel.vm, process,
            initial_prealloc=64 << 10, increment=32 << 10,
        )
        alloc.sbrk(64 << 10)  # consumes the initial pool exactly
        alloc.sbrk(8)  # forces a growth of `increment`
        assert alloc.stats.growths == 2
        assert process.heap_bytes == (64 << 10) + (32 << 10)

    def test_large_request_grows_at_least_that_much(self, machine):
        system, process = machine
        alloc = SbrkAllocator(
            system.kernel.vm, process,
            initial_prealloc=16 << 10, increment=16 << 10,
        )
        addr = alloc.sbrk(200 << 10)
        assert addr == process.heap_base
        assert process.heap_bytes >= 200 << 10

    def test_superpage_mode_creates_superpages(self, machine):
        system, process = machine
        alloc = SbrkAllocator(
            system.kernel.vm, process,
            initial_prealloc=64 << 10, increment=64 << 10,
            use_superpages=True,
        )
        alloc.sbrk(64)
        mapping = process.page_table.lookup(process.heap_base)
        assert mapping.is_superpage
        assert len(alloc.remap_reports) == 1

    def test_plain_mode_stays_on_base_pages(self, machine):
        system, process = machine
        alloc = SbrkAllocator(
            system.kernel.vm, process,
            initial_prealloc=64 << 10, increment=64 << 10,
            use_superpages=False,
        )
        alloc.sbrk(64)
        assert not process.page_table.lookup(process.heap_base).is_superpage

    def test_set_increment(self, machine):
        system, process = machine
        alloc = SbrkAllocator(
            system.kernel.vm, process,
            initial_prealloc=16 << 10, increment=16 << 10,
        )
        alloc.sbrk(16 << 10)
        alloc.set_increment(48 << 10)
        alloc.sbrk(8)
        assert process.heap_bytes == (16 << 10) + (48 << 10)

    def test_rejects_bad_sizes(self, machine):
        system, process = machine
        alloc = SbrkAllocator(system.kernel.vm, process)
        with pytest.raises(ValueError):
            alloc.sbrk(0)
        with pytest.raises(ValueError):
            alloc.set_increment(-1)


class TestProcess:
    def test_segments_reject_overlap(self):
        process = Process(pid=1, name="p")
        process.add_segment("text", 0x0100_0000, 64 << 10)
        with pytest.raises(ValueError):
            process.add_segment("data", 0x0100_8000, 64 << 10)

    def test_segment_rounding(self):
        process = Process(pid=1, name="p")
        seg = process.add_segment("data", 0x0200_0000, 100)
        assert seg.length == BASE_PAGE_SIZE

    def test_brk_monotonic(self):
        process = Process(pid=1, name="p")
        old = process.grow_brk(process.heap_base + 4096)
        assert old == process.heap_base
        with pytest.raises(ValueError):
            process.grow_brk(process.heap_base)


class TestMiniKernel:
    def test_layout_reserves_tables(self, mtlb_system):
        layout = mtlb_system.kernel.layout
        assert layout.shadow_table_base == 0
        assert layout.hpt_base >= 512 << 10  # past the shadow table
        assert layout.reserved_bytes % (4 << 20) == 0
        assert layout.first_user_frame == layout.reserved_bytes >> 12

    def test_user_mappings_below_kernel_rejected(self, mtlb_system):
        process = mtlb_system.kernel.create_process("k")
        with pytest.raises(ValueError):
            mtlb_system.kernel.sys_map(process, 0x1000, 4096)

    def test_process_switch_rebinds_hpt(self, mtlb_system):
        kernel = mtlb_system.kernel
        p1 = kernel.create_process("one")
        kernel.sys_map(p1, 0x0200_0000, 4096)
        p2 = kernel.create_process("two")
        assert kernel.current is p2
        kernel.switch_to(p1)
        assert kernel.hpt.resolver(0x0200_0000 >> 12) is not None

    def test_sys_remap_counts(self, mtlb_system):
        kernel = mtlb_system.kernel
        process = kernel.create_process("r")
        kernel.sys_map(process, 0x0200_0000, 64 << 10)
        report = kernel.sys_remap(process, 0x0200_0000, 64 << 10)
        assert report.superpages_created == 1
        assert kernel.stats.remap_calls == 1
        assert kernel.stats.remapped_pages == 16

    def test_timer_cycles(self, mtlb_system):
        costs = mtlb_system.kernel.costs
        assert mtlb_system.kernel.timer_cycles(0) == 0
        cycles = mtlb_system.kernel.timer_cycles(10 * costs.timer_interval)
        assert cycles == 10 * costs.timer_tick
