"""E4 — Figure 4(B): average time per cache fill across the MTLB sweep.

The no-MTLB baseline sets the floor; the MTLB adds a per-fill overhead
that shrinks from several cycles (default geometry) towards the
1-MMC-cycle shadow-check floor as the MTLB grows, because the residual
cost is the DRAM access of each MTLB fill.
"""

from conftest import figure4_result


def test_figure4b(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: figure4_result(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report_b)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
