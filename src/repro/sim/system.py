"""The simulated machine: wiring, the trace-execution hot loop, timing.

One :class:`System` is one machine for one run: CPU TLB + micro-ITLB +
block TLB, data cache, bus, MMC (with optional MTLB), DRAM, and the
MiniKernel.  ``run(trace)`` executes a workload trace from simulated boot
through process exit and returns a :class:`~repro.sim.results.RunResult`.

Performance note: trace execution is delegated to one of the two
engines in :mod:`repro.sim.engine` (DESIGN.md §10).  The scalar engine
is the per-reference loop, inlining the TLB and direct-mapped cache
*hit* paths against component internals; the vector engine additionally
fast-forwards over whole hit runs with numpy and is selected by default
(``SystemConfig.engine = "auto"``) whenever the configuration is
batchable.  Both are bit-identical in every statistic; misses and every
kernel operation go through the ordinary component APIs either way.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Tuple

from ..core.addrspace import BASE_PAGE_SHIFT, BASE_PAGE_SIZE, CACHE_LINE_SIZE
from ..core.mtlb import Mtlb, MtlbFault
from ..core.shadow_space import BucketShadowAllocator
from ..core.shadow_table import ShadowPageTable
from ..cpu.block_tlb import BlockTlb
from ..cpu.micro_itlb import MicroItlb
from ..cpu.miss_handler import SoftwareMissHandler
from ..cpu.tlb import Tlb
from ..errors import (
    MtlbParityFault,
    SilentCorruption,
    SimulationError,
    StaleSystemError,
)
from ..faults import MTLB_PARITY, SHADOW_BITFLIP, FAULT_SITES, FaultPlan
from ..mem.bus import Bus
from ..mem.cache import build_cache
from ..mem.dram import Dram
from ..mem.mmc import MemoryController
from ..mem.stream_buffers import StreamBufferUnit
from ..obs import MetricsRegistry, ObsCollector
from ..os_model.kernel import MiniKernel
from ..os_model.process import Process
from ..trace.events import (
    HeapGrow,
    MapConventional,
    MapRegion,
    Phase,
    Remap,
)
from ..trace.trace import Segment, Trace
from ..core.backends import get_backend
from .config import SystemConfig
from .engine import (
    EngineState,
    resolve_engine_decision,
    run_segment_scalar,
    run_segment_vector,
)
from .results import RunResult
from .stats import RunStats


__all__ = ["SimulationError", "System", "simulate"]


class System:
    """One simulated machine.  Build a fresh instance per run."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        mm = config.memory_map
        self.dram = Dram(config.dram)
        self.bus = Bus(config.bus)

        #: Built only when fault injection is configured: the disabled
        #: path must be a strict no-op (no plan object, no PRNG draws,
        #: bit-identical results).
        self.fault_plan: Optional[FaultPlan] = (
            FaultPlan(config.faults) if config.faults.enabled else None
        )

        #: The translation backend (DESIGN.md §16): owns the structures
        #: between a CPU TLB miss and the installed entry, the refill
        #: path, and its own metrics/sanitizer hooks.  System speaks
        #: only the protocol from here on.
        self.backend = get_backend(config.backend)(config)
        parts = self.backend.build_parts(self)
        self.shadow_table: Optional[ShadowPageTable] = parts.shadow_table
        self.mtlb: Optional[Mtlb] = parts.mtlb
        shadow_allocator: Optional[BucketShadowAllocator] = (
            parts.shadow_allocator
        )

        stream_unit = None
        if config.stream_buffers.enabled:
            stream_unit = StreamBufferUnit(config.stream_buffers, self.dram)
        self.stream_buffers = stream_unit
        self.mmc = MemoryController(
            memory_map=mm,
            dram=self.dram,
            timing=config.mmc,
            shadow_table=self.shadow_table,
            mtlb=self.mtlb,
            stream_buffers=stream_unit,
            fault_plan=self.fault_plan,
        )
        self.cache = build_cache(
            config.cache.size_bytes,
            config.cache.associativity,
            config.cache.physically_indexed,
        )
        self.tlb = Tlb(config.tlb.entries)
        self.micro_itlb = MicroItlb()

        self.kernel = MiniKernel(
            memory_map=mm,
            shadow_allocator=shadow_allocator,
            vm_costs=config.vm_costs,
            paging_costs=config.paging_costs,
            costs=config.kernel_costs,
            fragmentation=config.fragmentation,
            seed=config.seed,
            promotion_config=config.promotion,
            all_shadow=config.all_shadow,
            degradation_policy=config.degradation_policy,
        )
        self.kernel.vm.attach_machine(self)
        self.block_tlb = BlockTlb(
            vbase=0, pbase=0, size=self.kernel.layout.reserved_bytes
        )
        self.miss_handler = SoftwareMissHandler(
            self.kernel.hpt, config.handler
        )
        self.backend.attach(self)

        self.stats = RunStats()

        #: The machine's metric surface (DESIGN.md §9).  Components
        #: register snapshot sources here; at harvest the registry is
        #: collected and RunStats is rebuilt as a view over it.
        self.metrics = MetricsRegistry()
        self._register_metric_sources()

        #: Observability bundle (event tracer + phase attribution);
        #: None unless ``config.obs.enabled``.  The disabled path keeps
        #: every component tracer at None — the null-sink fast path.
        self.obs: Optional[ObsCollector] = None
        self._tracer = None
        if config.obs.enabled:
            self.obs = ObsCollector(config.obs)
            tracer = self.obs.tracer
            self._tracer = tracer
            self.tlb.tracer = tracer
            self.mmc.tracer = tracer
            self.kernel.tracer = tracer
            if self.mtlb is not None:
                self.mtlb.tracer = tracer

        #: Correctness tooling (repro.check, DESIGN.md §11).  Both hooks
        #: fire at every boundary — after each trace segment and each
        #: kernel event — and both default to None, so the disabled path
        #: costs exactly one attribute test per boundary.
        #: ``check_hook(system, item)`` is the tool hook the lockstep
        #: differential harness uses to digest machine state;
        #: ``sanitizers`` is the opt-in invariant sanitizer suite
        #: (``config.sanitize``), which raises
        #: :class:`~repro.errors.InvariantViolation` on the first broken
        #: architectural invariant.
        self.check_hook = None
        self.sanitizers = None
        if config.sanitize:
            from ..check.sanitizers import SanitizerSuite

            self.sanitizers = SanitizerSuite(self)

        #: (segment label, cycles attributed to it) in execution order;
        #: used by the init-cost and phase-analysis benches.
        self.segment_cycles: List[Tuple[str, int]] = []
        self._ran = False
        #: Optional hard cap on references simulated (set by the bench
        #: runner); exceeding it raises ReferenceBudgetExceeded.  Kept
        #: off the config so budgeted and unbudgeted runs stay
        #: config-identical.
        self.reference_budget: Optional[int] = None
        #: Oracle translation checker (config.check_translations = N):
        #: every Nth shadow fill is cross-validated.
        self._oracle_every = config.check_translations
        self._oracle_count = 0
        self._ifetch_counter = 0
        self._ifetch_instr_accum = 0
        # Functional data store, sharded per physical frame so a page-out
        # moves a whole frame's words in O(words actually written): real
        # pfn -> {byte offset -> value}, plus swapped-out page contents
        # keyed by shadow page index.
        self._word_store: Dict[int, Dict[int, int]] = {}
        self._swap_data: Dict[int, Dict[int, int]] = {}

        #: Trace-execution engine for this run ("scalar" or "vector"),
        #: resolved from ``config.engine`` against what this machine can
        #: batch (DESIGN.md §10), and the human-readable reason for the
        #: decision (surfaced via the ``sim.engine_resolved`` metric,
        #: the run banner, and ``RunReport.engine``).
        self.engine, self.engine_reason = resolve_engine_decision(self)
        #: The vector engine's adaptive-predictor state (window
        #: geometry; pure perf, never results).  ``MultiProgram`` swaps
        #: a per-process instance in at context switches.
        self.engine_state = EngineState()

    # ================================================================== #
    # Machine port used by the OS (costed primitives)
    # ================================================================== #

    def flush_virtual_range(
        self, process: Process, vstart: int, length: int
    ) -> Tuple[int, int]:
        """Flush a virtual range from the cache, writing dirty lines back.

        Translation uses the process's *current* page tables (callers flush
        before changing mappings).  Returns ``(cycles, dirty_lines)``.
        """
        cfg = self.config.cache
        cache = self.cache
        table = process.page_table
        cycles = 0
        dirty_lines = 0
        line = CACHE_LINE_SIZE
        for page_vaddr in range(vstart, vstart + length, BASE_PAGE_SIZE):
            mapping = table.lookup(page_vaddr)
            if mapping is None:
                raise SimulationError(
                    f"flush of unmapped page {page_vaddr:#010x}"
                )
            delta = mapping.pbase - mapping.vbase
            for line_vaddr in range(
                page_vaddr, page_vaddr + BASE_PAGE_SIZE, line
            ):
                cycles += cfg.flush_line_cycles
                present, dirty = cache.flush_line(
                    line_vaddr, line_vaddr + delta
                )
                if present and dirty:
                    cycles += cfg.flush_dirty_cycles
                    self.bus.writeback_cycles()
                    self.mmc.writeback(line_vaddr + delta)
                    dirty_lines += 1
        return cycles, dirty_lines

    def shootdown_range(self, vstart: int, length: int) -> int:
        """Purge CPU TLB entries for a virtual range (and the micro-ITLB)."""
        removed = self.tlb.shootdown_range(vstart, length)
        self.micro_itlb.invalidate()
        self.backend.on_shootdown(self, vstart, length)
        return removed

    def uncached_mmc_write(self) -> int:
        """Cycle cost of one uncached control-register write to the MMC."""
        return (
            self.bus.uncached_write_cycles()
            + self.config.mmc.base_occupancy
            * self.config.mmc.cpu_cycles_per_mmc_cycle
        )

    # -- functional data movement used by the pager ---------------------- #

    def page_data_out(self, pfn: int, shadow_index: int) -> None:
        """Move a frame's functional data to the swap slot (page-out).

        The word store is sharded per frame, so this is one dict move
        touching only the offsets that were ever written — not a sweep
        of all 512 word slots of the page.  DRAM cycle accounting is
        unaffected: the pager charges disk/DRAM time itself and this
        path has always been purely functional.
        """
        self._swap_data[shadow_index] = self._word_store.pop(pfn, {})

    def page_data_in(self, pfn: int, shadow_index: int) -> None:
        """Move swapped functional data into a (possibly new) frame."""
        slot = self._swap_data.pop(shadow_index, {})
        if not slot:
            return
        existing = self._word_store.get(pfn)
        if existing is None:
            self._word_store[pfn] = slot
        else:
            existing.update(slot)

    # ================================================================== #
    # Kernel memory accesses (block-TLB mapped, through the data cache)
    # ================================================================== #

    def _kernel_access(self, paddr: int, is_write: bool) -> int:
        """One timed kernel access (e.g. an HPT probe).  Returns cycles."""
        result = self.cache.access(paddr, paddr, is_write)
        if result.hit:
            return 1
        cycles = 1
        if result.writeback_paddr is not None:
            self.bus.writeback_cycles()
            self.mmc.writeback(result.writeback_paddr)
        fill = self.mmc.cache_fill(paddr, is_write)
        stall = (
            self.bus.fill_request_cycles()
            + fill.cpu_cycles
            + self.bus.fill_return_cycles()
        )
        self.stats.fills += 1
        self.stats.fill_stall_cycles += stall
        return cycles + stall

    # ================================================================== #
    # Run orchestration
    # ================================================================== #

    def begin_run(self) -> None:
        """Claim this machine for one run and re-resolve the engine.

        Every run driver (:meth:`run`, ``MultiProgram.run``) must enter
        through here rather than poking ``_ran`` directly: the engine
        re-resolution is what protects the vector engine from fault
        plans and swapped-in cache models ("auto" must follow the
        machine actually being run, and "vector" must refuse one it
        cannot batch), and it has to fire for *every* entry point.
        """
        if self._ran:
            raise StaleSystemError(
                "a System instance simulates exactly one run"
            )
        self._ran = True
        self.engine, self.engine_reason = resolve_engine_decision(self)

    def run(self, trace: Trace) -> RunResult:
        """Simulate *trace* from boot through exit; returns the result."""
        self.begin_run()
        stats = self.stats
        kernel = self.kernel

        if self.obs is not None:
            self._obs_sample()
        stats.kernel_cycles += kernel.costs.boot + kernel.costs.fork_exec
        process = kernel.create_process(trace.name)
        if self.obs is not None:
            self._tracer.clock = stats.kernel_cycles
        stats.kernel_cycles += kernel.sys_map(
            process, trace.text_base, trace.text_size
        )
        if self.obs is not None:
            self._obs_sample()
        self._text_page_count = max(1, trace.text_size >> BASE_PAGE_SHIFT)
        self._text_base = trace.text_base

        for item in trace.items:
            if isinstance(item, Segment):
                self._run_segment(item, process)
            else:
                self._exec_event(item, process)

        stats.kernel_cycles += kernel.costs.exit
        subtotal = (
            stats.instruction_cycles
            + stats.memory_stall_cycles
            + stats.tlb_miss_cycles
            + stats.kernel_cycles
        )
        stats.kernel_cycles += kernel.timer_cycles(subtotal)
        stats.total_cycles = (
            stats.instruction_cycles
            + stats.memory_stall_cycles
            + stats.tlb_miss_cycles
            + stats.kernel_cycles
        )

        if self.obs is not None:
            self._tracer.clock = stats.total_cycles
            self._obs_sample()

        self._harvest_component_stats()
        stats.check_consistency()
        return RunResult(
            workload=trace.name,
            config_label=self.config.label,
            stats=stats,
            metrics=self.metrics.collect(),
            obs=self.obs,
            engine=self.engine,
        )

    def _register_metric_sources(self) -> None:
        """Register every component's counter snapshot with the metrics
        registry (DESIGN.md §9).  Sources are pulled only at collect
        time, so registration costs the hot loop nothing."""
        # Late-bound through ``self`` so a component swapped in after
        # construction (tests do this to the cache) is still the one
        # snapshotted at collect time.
        reg = self.metrics
        # Engine-resolution surfacing (registry-only, deliberately NOT
        # a RunStats/extra field: stats must stay bit-identical across
        # engines, while registry metrics ride RunResult.metrics and
        # store records for RunReport/daemon tenants to read).
        reg.add_source(
            "sim",
            lambda: {
                "engine_resolved": 1.0 if self.engine == "vector" else 0.0
            },
        )
        reg.add_source("tlb", lambda: self.tlb.metrics_snapshot())
        reg.add_source("cache", lambda: self.cache.metrics_snapshot())
        reg.add_source("mmc", lambda: self.mmc.metrics_snapshot())
        reg.add_source(
            "kernel", lambda: self.kernel.stats.metrics_snapshot()
        )
        reg.add_source(
            "promotion",
            lambda: self.kernel.promotion.stats.metrics_snapshot(),
        )
        # Backend-owned sources: the mtlb backend registers the "mtlb"
        # source (when an MTLB exists) exactly as the inline code used
        # to; other backends bring their own counters.
        self.backend.register_metrics(self)
        reg.add_source(
            "vm",
            lambda: {"degraded_remaps": self.kernel.vm.degraded_remap_events},
        )
        plan = self.fault_plan
        if plan is not None:
            reg.add_source(
                "faults",
                lambda: {
                    "injected": plan.stats.total_injected,
                    "recovered": plan.stats.total_recovered,
                },
            )

    def _obs_sample(self) -> None:
        """Record one phase-attribution sample at the current cycle."""
        stats = self.stats
        self.obs.attributor.sample(
            stats.instruction_cycles,
            stats.memory_stall_cycles,
            stats.tlb_miss_cycles,
            stats.kernel_cycles,
        )

    def _harvest_component_stats(self) -> None:
        """Fold component counters into the registry and rebuild RunStats
        as a view over it: the run-loop accumulators are published first,
        then ``collect()`` overlays the authoritative component sources,
        then the dataclass fields are re-read from the registry."""
        stats = self.stats
        reg = self.metrics
        plan = self.fault_plan
        if plan is not None:
            for site in FAULT_SITES:
                if plan.stats.injected[site] or plan.stats.recovered[site]:
                    stats.extra[f"faults_injected_{site}"] = (
                        plan.stats.injected[site]
                    )
                    stats.extra[f"faults_recovered_{site}"] = (
                        plan.stats.recovered[site]
                    )
        stats.publish_to(reg)
        if self.obs is not None:
            self.obs.observe_superpage_sizes(
                reg,
                (
                    record.region.size
                    for record in self.kernel.vm.shadow_superpages.values()
                ),
            )
            self.obs.finalize(reg)
        stats.apply_registry(reg)

    # ================================================================== #
    # Kernel events
    # ================================================================== #

    def _exec_event(self, event, process: Process) -> None:
        stats = self.stats
        kernel = self.kernel
        if self._tracer is not None:
            self._tracer.clock = (
                stats.instruction_cycles
                + stats.memory_stall_cycles
                + stats.tlb_miss_cycles
                + stats.kernel_cycles
            )
        if isinstance(event, MapRegion):
            stats.kernel_cycles += kernel.sys_map(
                process, event.vaddr, event.length
            )
        elif isinstance(event, MapConventional):
            stats.kernel_cycles += (
                kernel.vm.map_region_conventional_superpages(
                    process, event.vaddr, event.length
                )
            )
        elif isinstance(event, Remap):
            if self.config.use_superpages:
                report = kernel.sys_remap(process, event.vaddr, event.length)
                stats.kernel_cycles += report.total_cycles
                stats.remap_pages += report.pages_remapped
                stats.remap_cycles += report.total_cycles
                stats.remap_flush_cycles += report.flush_cycles
        elif isinstance(event, HeapGrow):
            stats.kernel_cycles += kernel.sys_map(
                process, event.vaddr, event.length
            )
            if event.remap and self.config.use_superpages:
                report = kernel.sys_remap(process, event.vaddr, event.length)
                stats.kernel_cycles += report.total_cycles
                stats.remap_pages += report.pages_remapped
                stats.remap_cycles += report.total_cycles
                stats.remap_flush_cycles += report.flush_cycles
        elif isinstance(event, Phase):
            pass
        else:
            raise SimulationError(f"unknown trace event {event!r}")
        if self.obs is not None:
            self._obs_sample()
        if self.check_hook is not None:
            self.check_hook(self, event)
        if self.sanitizers is not None:
            self.sanitizers.run(f"event {type(event).__name__}")

    # ================================================================== #
    # The hot loop
    # ================================================================== #

    def _run_segment(self, seg: Segment, process: Process) -> None:
        """Execute one reference segment with the resolved engine."""
        if self.engine == "vector":
            run_segment_vector(self, seg, process)
        else:
            run_segment_scalar(self, seg, process)
        if self.check_hook is not None:
            self.check_hook(self, seg)
        if self.sanitizers is not None:
            self.sanitizers.run(f"segment {seg.label!r}")

    def _refill_tlb(self, vaddr: int):
        """Software TLB refill; returns (entry, handler cycles).

        Delegates to the translation backend's miss path (DESIGN.md
        §16); both engines call this for every CPU TLB miss.
        """
        return self.backend.refill_tlb(self, vaddr)

    #: Bound on consecutive parity-fault recoveries for one fill; a
    #: correctly scrubbing kernel converges in one pass, so hitting the
    #: bound means recovery itself is broken (or injection rates are so
    #: high every retry re-faults) and the fault should propagate.
    _MAX_PARITY_RECOVERIES = 8

    def _fill_stall(self, paddr: int, op: int) -> int:
        """Cache-fill stall for one miss; services MTLB/parity faults
        inline (page-in for precise MTLB faults, flush-and-refill plus a
        shadow-table scrub for parity faults)."""
        paged_in = False
        parity_recoveries = 0
        while True:
            try:
                fill = self.mmc.cache_fill(paddr, op == 1)
                break
            except MtlbParityFault as fault:
                parity_recoveries += 1
                if parity_recoveries > self._MAX_PARITY_RECOVERIES:
                    raise
                service = self.kernel.handle_parity_fault(fault.shadow_index)
                self.stats.kernel_cycles += service
                if self.fault_plan is not None:
                    site = (
                        MTLB_PARITY
                        if fault.origin == "mtlb"
                        else SHADOW_BITFLIP
                    )
                    self.fault_plan.record_recovery(site)
            except MtlbFault as fault:
                if paged_in:
                    raise
                paged_in = True
                service = self.kernel.handle_mtlb_fault(fault.shadow_index)
                self.stats.kernel_cycles += service
        stall = (
            self.bus.fill_request_cycles()
            + fill.cpu_cycles
            + self.bus.fill_return_cycles()
        )
        self.stats.fills += 1
        self.stats.fill_stall_cycles += stall
        if self._oracle_every and self.mmc.memory_map.is_shadow(paddr):
            self._oracle_count += 1
            if self._oracle_count % self._oracle_every == 0:
                self._oracle_check(paddr, fill.real_paddr)
        return stall

    def _oracle_check(self, paddr: int, real_paddr: int) -> None:
        """Cross-validate one shadow translation against the shadow page
        table and the kernel's superpage records (opt-in differential
        checker; any mismatch is a translation the hardware produced
        that nothing authoritative agrees with)."""
        self.stats.oracle_checks += 1
        mm = self.mmc.memory_map
        shadow_index = (paddr - mm.shadow_base) >> BASE_PAGE_SHIFT
        hw_pfn = real_paddr >> BASE_PAGE_SHIFT
        entry = self.shadow_table.entry(shadow_index)
        if not entry.valid or entry.pfn != hw_pfn:
            raise SilentCorruption(shadow_index, hw_pfn, entry.pfn)
        record = self.kernel.vm.record_for_shadow_index(shadow_index)
        if record is not None:
            expected = record.pfns[shadow_index - record.first_shadow_index]
            if expected is not None and expected != hw_pfn:
                raise SilentCorruption(shadow_index, hw_pfn, expected)

    # ================================================================== #
    # Instruction-side translation model
    # ================================================================== #

    def _model_ifetch(self, seg: Segment) -> None:
        """Charge instruction-page transitions through the TLB hierarchy.

        The instruction cache is perfect (paper Section 3.2) and a
        one-entry micro-ITLB front-ends the main TLB, so only transitions
        between instruction pages cost anything: each does a main-TLB
        lookup, occasionally a software refill.  Transitions rotate over
        the pages of the segment's code footprint.
        """
        interval = self.config.ifetch_page_instructions
        self._ifetch_instr_accum += seg.instructions
        transitions = self._ifetch_instr_accum // interval
        self._ifetch_instr_accum %= interval
        if transitions <= 0:
            return
        pages = min(seg.text_pages, self._text_page_count)
        stats = self.stats
        stats.itlb_transitions += transitions
        tlb = self.tlb
        extra_inst = 0
        miss_cycles = 0
        for _ in range(transitions):
            vaddr = (
                self._text_base
                + (self._ifetch_counter % pages) * BASE_PAGE_SIZE
            )
            self._ifetch_counter += 1
            self.micro_itlb.stats.lookups += 1
            self.micro_itlb.stats.misses += 1
            extra_inst += 1
            entry = tlb.lookup(vaddr)
            if entry is None:
                stats.itlb_main_misses += 1
                entry, cost = self._refill_tlb(vaddr)
                miss_cycles += cost
            self.micro_itlb.refill(entry)
        stats.instruction_cycles += extra_inst
        stats.tlb_miss_cycles += miss_cycles

    def touch(self, process: Process, vaddr: int, is_write: bool = False) -> int:
        """Run one memory reference through the full timed path.

        Exactly what one trace reference does — CPU TLB (with software
        refill on a miss), cache, and on a cache miss the bus + MMC (+
        MTLB) — outside of a trace run.  Returns the cycle cost.  Used
        by examples, microbenchmarks and directed tests.
        """
        cycles = 1
        entry = self.tlb.lookup(vaddr)
        if entry is None:
            entry, cost = self._refill_tlb(vaddr)
            cycles += cost
        paddr = entry.translate(vaddr)
        result = self.cache.access(vaddr, paddr, is_write)
        if not result.hit:
            if result.writeback_paddr is not None:
                self.bus.writeback_cycles()
                self.mmc.writeback(result.writeback_paddr)
            cycles += self._fill_stall(paddr, 1 if is_write else 0)
        return cycles

    # ================================================================== #
    # Functional word access (integration-test surface)
    # ================================================================== #

    def store_word(self, process: Process, vaddr: int, value: int) -> None:
        """Functionally store a value through the full translation path."""
        real = self._functional_translate(process, vaddr, is_write=True)
        frame = self._word_store.setdefault(real >> BASE_PAGE_SHIFT, {})
        frame[real & (BASE_PAGE_SIZE - 1)] = value

    def load_word(self, process: Process, vaddr: int) -> Optional[int]:
        """Functionally load a value through the full translation path."""
        real = self._functional_translate(process, vaddr, is_write=False)
        frame = self._word_store.get(real >> BASE_PAGE_SHIFT)
        if frame is None:
            return None
        return frame.get(real & (BASE_PAGE_SIZE - 1))

    def _functional_translate(
        self, process: Process, vaddr: int, is_write: bool
    ) -> int:
        if vaddr % 8:
            raise ValueError("functional accesses must be 8-byte aligned")
        entry = self.tlb.lookup(vaddr)
        if entry is None:
            entry, _cost = self._refill_tlb(vaddr)
        paddr = entry.translate(vaddr)
        try:
            return self.mmc.resolve(paddr)
        except MtlbFault as fault:
            self.kernel.handle_mtlb_fault(fault.shadow_index)
            return self.mmc.resolve(paddr)


def simulate(trace: Trace, config: SystemConfig) -> RunResult:
    """Build a fresh machine for *config* and run *trace* on it.

    .. deprecated:: 1.1
        ``simulate`` predates the typed facade; new code should use
        :func:`repro.api.run` with a :class:`repro.api.ScenarioSpec`
        (same machine, same trace path, bit-identical results, plus
        store-backed caching).  This shim stays for existing callers.
    """
    warnings.warn(
        "repro.sim.system.simulate() is deprecated; use "
        "repro.api.run(ScenarioSpec(...)) — results are bit-identical "
        "and sweeps gain content-addressed caching",
        DeprecationWarning,
        stacklevel=2,
    )
    return System(config).run(trace)
