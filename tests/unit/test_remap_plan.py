"""Unit and property tests for the maximal-superpage tiling planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addrspace import BASE_PAGE_SIZE, SUPERPAGE_SIZES, is_aligned
from repro.core.remap import (
    covered_bytes,
    plan_superpages,
    uncovered_ranges,
)

MIN_SUPER = SUPERPAGE_SIZES[0]


class TestPlanner:
    def test_aligned_exact_region(self):
        plans = plan_superpages(0x1000_0000, 16 << 20)
        assert len(plans) == 1
        assert plans[0].size == 16 << 20

    def test_sub_minimum_region_left_alone(self):
        assert plan_superpages(0x1000_0000, 8 << 10) == []

    def test_misaligned_head_skipped(self):
        # Start 4 KB past a 16 KB boundary: the head stays on base pages.
        plans = plan_superpages(0x1000_1000, 32 << 10)
        assert plans[0].vaddr == 0x1000_4000

    def test_paper_example_16kb_mapping(self):
        # Figure 1's 16 KB superpage at virtual 0x00004000.
        plans = plan_superpages(0x4000, 16 << 10)
        assert len(plans) == 1
        assert plans[0].vaddr == 0x4000 and plans[0].size == 16 << 10

    def test_maximality_greedy(self):
        # 64 KB-aligned start, 80 KB long: one 64 KB + one 16 KB.
        plans = plan_superpages(0x1001_0000, 80 << 10)
        assert [p.size for p in plans] == [64 << 10, 16 << 10]

    def test_compress_tables_tiling(self):
        # The paper's compress95 tables region: 557,056 bytes starting
        # 16 KB past a 256 KB boundary -> 10 superpages.
        plans = plan_superpages(0x0200_4000, 557_056)
        assert len(plans) == 10

    def test_rejects_unaligned_region(self):
        with pytest.raises(ValueError):
            plan_superpages(0x123, 16 << 10)
        with pytest.raises(ValueError):
            plan_superpages(0x1000, 100)

    def test_uncovered_ranges(self):
        start, length = 0x1000_1000, 40 << 10
        plans = plan_superpages(start, length)
        holes = uncovered_ranges(start, length, plans)
        total = covered_bytes(plans) + sum(h[1] for h in holes)
        assert total == length


page_aligned = st.integers(min_value=0, max_value=(1 << 20)).map(
    lambda n: n * BASE_PAGE_SIZE
)
page_lengths = st.integers(min_value=0, max_value=20 << 20 >> 12).map(
    lambda n: n * BASE_PAGE_SIZE
)


class TestPlannerProperties:
    @settings(max_examples=200, deadline=None)
    @given(page_aligned, page_lengths)
    def test_tiling_invariants(self, start, length):
        plans = plan_superpages(start, length)
        end = start + length
        cursor = None
        for plan in plans:
            # Legal size, self-aligned, inside the region.
            assert plan.size in SUPERPAGE_SIZES
            assert is_aligned(plan.vaddr, plan.size)
            assert start <= plan.vaddr and plan.end <= end
            # Ascending, non-overlapping.
            if cursor is not None:
                assert plan.vaddr >= cursor
            cursor = plan.end
        # No hole could hold an aligned minimum-size superpage (holes
        # may reach 16 KB+ in length only when misaligned).
        holes = uncovered_ranges(start, length, plans)
        for hstart, hlength in holes:
            first_aligned = (hstart + MIN_SUPER - 1) & ~(MIN_SUPER - 1)
            assert first_aligned + MIN_SUPER > hstart + hlength
        # Exact cover.
        assert covered_bytes(plans) + sum(h[1] for h in holes) == length

    @settings(max_examples=200, deadline=None)
    @given(page_aligned, page_lengths)
    def test_maximality(self, start, length):
        """No two adjacent plans could merge into a bigger legal plan,
        and no plan could be grown in place."""
        plans = plan_superpages(start, length)
        end = start + length
        for plan in plans:
            bigger = plan.size * 4
            if bigger in SUPERPAGE_SIZES:
                # Growing this plan in place must be illegal: either
                # misaligned or overrunning the region.
                assert (
                    not is_aligned(plan.vaddr, bigger)
                    or plan.vaddr + bigger > end
                )
