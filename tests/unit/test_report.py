"""Unit tests for the run-report renderer."""

import numpy as np

from repro.sim.config import paper_mtlb, paper_no_mtlb
from repro.sim.report import compare_runs, describe_run
from repro.sim.system import System
from repro.trace import synth
from repro.trace.events import MapRegion, Remap
from repro.trace.trace import Trace, make_segment


def _run(config):
    trace = Trace("report")
    trace.add(MapRegion(0x0200_0000, 1 << 20))
    trace.add(Remap(0x0200_0000, 1 << 20))
    rng = np.random.default_rng(3)
    vaddrs = synth.uniform_random(rng, 0x0200_0000, 1 << 20, 30_000)
    trace.add(make_segment("s", vaddrs, write_mask=(vaddrs % 64 == 0)))
    return System(config).run(trace)


class TestDescribeRun:
    def test_contains_breakdown(self):
        text = describe_run(_run(paper_no_mtlb(96)))
        for needle in (
            "runtime", "instruction issue", "memory stalls",
            "TLB miss handling", "kernel", "cache:", "fills:",
        ):
            assert needle in text
        assert "MTLB" not in text  # no MTLB on this machine

    def test_mtlb_and_remap_sections(self):
        text = describe_run(_run(paper_mtlb(96)))
        assert "MTLB:" in text
        assert "remap:" in text

    def test_custom_title(self):
        text = describe_run(_run(paper_no_mtlb(96)), title="hello")
        assert text.splitlines()[0] == "hello"

    def test_percentages_sum_close_to_100(self):
        text = describe_run(_run(paper_no_mtlb(96)))
        percentages = [
            float(line.split()[-1].rstrip("%"))
            for line in text.splitlines()
            if line.strip().endswith("%") and "issue" in line
            or line.strip().endswith("%") and "stalls" in line
            or line.strip().endswith("%") and "handling" in line
            or line.strip().endswith("%") and "kernel" in line
        ]
        assert abs(sum(percentages) - 100.0) < 0.5


class TestCompareRuns:
    def test_headline_ratio(self):
        base = _run(paper_no_mtlb(96))
        fast = _run(paper_mtlb(96))
        text = compare_runs(base, fast)
        assert "runs at" in text
        assert base.config_label in text and fast.config_label in text
