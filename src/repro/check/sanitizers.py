"""Architectural invariant sanitizers (DESIGN.md §11).

Each sanitizer audits one hardware/OS component of a live
:class:`~repro.sim.system.System` against the invariants its design
promises, raising :class:`~repro.errors.InvariantViolation` naming the
component, the broken invariant, and the boundary it was caught at.
The suite runs after every trace segment and kernel event when
``SystemConfig.sanitize`` is set; it only *reads* state (side-effect-free
probes, direct array reads), so enabling it never changes results.

The invariants:

* **tlb** — entry count bookkeeping matches the per-size tables; the
  ascending size list matches the resident sizes; every entry is filed
  under its own aligned vbase; the MRU probe hint names a resident size;
  the vector engine's coverage mirror (when its generation is current)
  agrees with the live entries; and for every resident vbase a
  side-effect-free probe returns the *most specific* covering entry —
  overlapping entries of different sizes must never shadow a smaller
  one (the paper's variable-page-size lookup rule).
* **cache** — the mutation stamp never rewinds (both models); plus
  (direct-mapped) no line is dirty-but-invalid and every valid tag
  names a line inside installed DRAM or the shadow window;
  (set-associative) no set exceeds its associativity, and the vector
  engine's residency mirror — when built — holds exactly the tags the
  authoritative per-set dicts hold (membership only; way order is
  arbitrary by contract, DESIGN.md §10).
* **shadow_table** — referenced/dirty bits are only ever set on valid
  (mapped) entries (Section 2.5's per-base-page accounting depends on
  it); no two valid entries name the same real frame; and the kernel's
  superpage records agree with the table (resident base page ⇔ valid
  entry with that pfn; swapped-out base page ⇔ invalid entry whose
  contents live in the backing store).  Entries with injected bad
  parity are skipped — their content is untrusted by design.
* **mtlb** — no set exceeds its associativity; every way sits in the
  set its index selects and is keyed by its own shadow index; every
  cached way with intact table parity mirrors the in-DRAM entry's
  (pfn, valid) exactly (all OS control writes purge, so a stale way is
  a coherence bug).
* **frames** — the free list and the free set agree; no frame that any
  valid shadow-table entry maps is on the free list; no frame backing a
  real (non-shadow) process mapping is on the free list.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.addrspace import BASE_PAGE_SHIFT, CACHE_LINE_SHIFT
from ..core.shadow_table import DIRTY_BIT, PFN_MASK, REF_BIT, VALID_BIT
from ..errors import InvariantViolation
from ..mem.cache import _INVALID, DirectMappedCache, SetAssociativeCache


class SanitizerSuite:
    """All component sanitizers over one live System."""

    def __init__(self, system) -> None:
        self.system = system
        # Monotonicity checks need the previous boundary's observations.
        self._last_cache_stamp = -1
        #: Number of times :meth:`run` has completed (for tests/tools).
        self.boundaries_checked = 0

    def run(self, where: str) -> None:
        """Audit every component; raise on the first broken invariant."""
        self.check_tlb(where)
        self.check_cache(where)
        self.check_shadow_table(where)
        self.check_mtlb(where)
        self.check_frames(where)
        # Backend-owned invariants (DESIGN.md §16): each translation
        # backend audits its own structures (coalesced entry freshness,
        # Victima pool/directory lockstep); the mtlb backend's are the
        # shadow-table/MTLB checks above, so its hook is a no-op.
        self.system.backend.sanitize(self.system, where)
        self.boundaries_checked += 1

    # ------------------------------------------------------------------ #
    # CPU TLB
    # ------------------------------------------------------------------ #

    def check_tlb(self, where: str) -> None:
        tlb = self.system.tlb

        def fail(detail: str) -> None:
            raise InvariantViolation("tlb", detail, where)

        total = sum(len(t) for t in tlb._by_size.values())
        if total != tlb._count:
            fail(f"entry count {tlb._count} but tables hold {total}")
        if total > tlb.capacity:
            fail(f"{total} entries exceed capacity {tlb.capacity}")
        if tlb._sizes != sorted(tlb._by_size):
            fail(
                f"size list {tlb._sizes} out of sync with resident "
                f"sizes {sorted(tlb._by_size)}"
            )
        if tlb._mru_size is not None and tlb._mru_size not in tlb._by_size:
            fail(
                f"MRU probe hint {tlb._mru_size:#x} names a size with "
                "no resident entries"
            )
        for size, table in tlb._by_size.items():
            for vbase, entry in table.items():
                if entry.size != size or entry.vbase != vbase:
                    fail(
                        f"entry {entry.vbase:#010x}/{entry.size:#x} filed "
                        f"under key {vbase:#010x} in the {size:#x} table"
                    )
                if vbase & (size - 1):
                    fail(
                        f"entry vbase {vbase:#010x} not aligned to its "
                        f"page size {size:#x}"
                    )
        # The vector engine's coverage mirror, when current, must agree
        # with the live entries (a desynced mirror silently mistranslates
        # whole hit runs).
        cached = tlb._coverage_cache
        if cached is not None and cached[0] == tlb.generation:
            mirrored = {
                (size, int(vb), int(vb) + int(delta))
                for size, vbases, deltas in cached[1]
                for vb, delta in zip(vbases, deltas)
            }
            live = {
                (e.size, e.vbase, e.pbase) for e in tlb.entries()
            }
            if mirrored != live:
                fail(
                    "coverage mirror is marked current but disagrees "
                    f"with the live entries ({len(mirrored ^ live)} "
                    "entries differ)"
                )
        # Most-specific-wins: probing any resident vbase must return the
        # smallest entry covering it, regardless of the MRU hint.
        for entry in tlb.entries():
            expected = min(
                (
                    e
                    for e in tlb.entries()
                    if e.vbase <= entry.vbase < e.vend
                ),
                key=lambda e: e.size,
            )
            got = tlb.probe(entry.vbase)
            if got is not expected:
                fail(
                    f"probe({entry.vbase:#010x}) returned the "
                    f"{got.size:#x} entry, but a more specific "
                    f"{expected.size:#x} entry covers it (shadowed "
                    "overlapping entry)"
                )

    # ------------------------------------------------------------------ #
    # Data cache
    # ------------------------------------------------------------------ #

    def check_cache(self, where: str) -> None:
        cache = self.system.cache
        mm = self.system.config.memory_map

        def fail(detail: str) -> None:
            raise InvariantViolation("cache", detail, where)

        if isinstance(cache, DirectMappedCache):
            if cache.mutation_stamp < self._last_cache_stamp:
                fail(
                    f"mutation stamp rewound from "
                    f"{self._last_cache_stamp} to {cache.mutation_stamp}"
                )
            self._last_cache_stamp = cache.mutation_stamp
            tags = cache._tags
            dirty = cache._dirty
            bad = (dirty != 0) & (tags == -1)
            if bad.any():
                idx = int(bad.argmax())
                fail(
                    f"set {idx:#x} is dirty but its tag is invalid "
                    "(dirty mirror desynced from line state)"
                )
            valid = tags != -1
            if valid.any():
                paddrs = tags[valid] << CACHE_LINE_SHIFT
                legal = [
                    p
                    for p in paddrs.tolist()
                    if not (mm.is_dram(p) or mm.is_shadow(p))
                ]
                if legal:
                    fail(
                        f"valid tag names line {legal[0]:#010x}, outside "
                        "both installed DRAM and the shadow window"
                    )
        elif isinstance(cache, SetAssociativeCache):
            if cache.mutation_stamp < self._last_cache_stamp:
                fail(
                    f"mutation stamp rewound from "
                    f"{self._last_cache_stamp} to {cache.mutation_stamp}"
                )
            self._last_cache_stamp = cache.mutation_stamp
            plane = cache._mirror
            for idx, line_set in enumerate(cache._sets):
                if len(line_set) > cache.associativity:
                    fail(
                        f"set {idx:#x} holds {len(line_set)} lines, "
                        f"associativity is {cache.associativity}"
                    )
                if plane is None:
                    continue
                # The vector engine's residency mirror must agree with
                # the authoritative per-set dict — membership only, way
                # order is arbitrary by contract (DESIGN.md §10).
                mirrored = sorted(
                    int(t) for t in plane[idx] if t != _INVALID
                )
                if mirrored != sorted(line_set):
                    fail(
                        f"set {idx:#x} residency mirror holds tags "
                        f"{mirrored} but the set holds "
                        f"{sorted(line_set)} (desynced mirror; vector "
                        "windows would mispredict hits)"
                    )

    # ------------------------------------------------------------------ #
    # Shadow page table
    # ------------------------------------------------------------------ #

    def check_shadow_table(self, where: str) -> None:
        mmc = self.system.mmc
        table = getattr(mmc, "shadow_table", None)
        if table is None:
            return

        def fail(detail: str) -> None:
            raise InvariantViolation("shadow_table", detail, where)

        entries = table._entries
        trusted = np.ones(len(entries), dtype=bool)
        for idx in table._bad_parity:
            trusted[idx] = False

        # Accounting bits only on mapped entries (Section 2.5).
        acc = (entries & (REF_BIT | DIRTY_BIT)) != 0
        unmapped = (entries & VALID_BIT) == 0
        leak = acc & unmapped & trusted
        if leak.any():
            idx = int(leak.argmax())
            raw = int(entries[idx])
            bits = []
            if raw & REF_BIT:
                bits.append("referenced")
            if raw & DIRTY_BIT:
                bits.append("dirty")
            fail(
                f"shadow page {idx:#x} is invalid but carries "
                f"{'/'.join(bits)} bits"
            )

        # PFN uniqueness among valid entries.
        valid = ((entries & VALID_BIT) != 0) & trusted
        pfns = entries[valid] & PFN_MASK
        if len(pfns) != len(np.unique(pfns)):
            vals, counts = np.unique(pfns, return_counts=True)
            dup = int(vals[counts > 1][0])
            owners = [
                f"{i:#x}"
                for i in np.nonzero(valid)[0].tolist()
                if int(entries[i]) & PFN_MASK == dup
            ]
            fail(
                f"pfn {dup:#x} is mapped by shadow pages "
                f"{', '.join(owners)} (double-mapped frame)"
            )

        # Cross-check the kernel's superpage records.
        kernel = self.system.kernel
        pager = kernel.pager
        for record in kernel.vm.shadow_superpages.values():
            first = record.first_shadow_index
            for i, pfn in enumerate(record.pfns):
                idx = first + i
                if not table.parity_ok(idx):
                    continue
                raw = int(entries[idx])
                if pfn is not None:
                    if not raw & VALID_BIT:
                        fail(
                            f"shadow page {idx:#x} is resident per the "
                            "kernel record but invalid in the table"
                        )
                    if raw & PFN_MASK != pfn:
                        fail(
                            f"shadow page {idx:#x} maps pfn "
                            f"{raw & PFN_MASK:#x} but the kernel record "
                            f"says {pfn:#x}"
                        )
                else:
                    if raw & VALID_BIT:
                        fail(
                            f"shadow page {idx:#x} is swapped out per "
                            "the kernel record but valid in the table"
                        )
                    if not pager.store.holds(idx):
                        fail(
                            f"shadow page {idx:#x} is swapped out but "
                            "absent from the backing store"
                        )

    # ------------------------------------------------------------------ #
    # MTLB
    # ------------------------------------------------------------------ #

    def check_mtlb(self, where: str) -> None:
        mmc = self.system.mmc
        mtlb = getattr(mmc, "mtlb", None)
        if mtlb is None:
            return

        def fail(detail: str) -> None:
            raise InvariantViolation("mtlb", detail, where)

        table = mtlb.table
        for set_i, way_set in enumerate(mtlb._sets):
            if len(way_set) > mtlb.associativity:
                fail(
                    f"set {set_i} holds {len(way_set)} ways, "
                    f"associativity is {mtlb.associativity}"
                )
            for key, way in way_set.items():
                if way.shadow_index != key:
                    fail(
                        f"way for shadow page {way.shadow_index:#x} is "
                        f"keyed as {key:#x}"
                    )
                if (key & mtlb._set_mask) != set_i:
                    fail(
                        f"way for shadow page {key:#x} sits in set "
                        f"{set_i}, should be {key & mtlb._set_mask}"
                    )
                if not table.parity_ok(key):
                    continue
                raw = table.read_raw(key)
                if way.pfn != raw & PFN_MASK or way.valid != bool(
                    raw & VALID_BIT
                ):
                    fail(
                        f"cached way for shadow page {key:#x} holds "
                        f"(pfn={way.pfn:#x}, valid={way.valid}) but the "
                        f"table says (pfn={raw & PFN_MASK:#x}, "
                        f"valid={bool(raw & VALID_BIT)}) — a control "
                        "write did not purge"
                    )

    # ------------------------------------------------------------------ #
    # Frame allocator
    # ------------------------------------------------------------------ #

    def check_frames(self, where: str) -> None:
        frames = self.system.kernel.vm.frames
        mm = self.system.config.memory_map

        def fail(detail: str) -> None:
            raise InvariantViolation("frames", detail, where)

        if len(frames._free) != len(frames._free_set) or set(
            frames._free
        ) != frames._free_set:
            fail(
                f"free list ({len(frames._free)} frames) and free set "
                f"({len(frames._free_set)}) disagree"
            )
        free = frames._free_set
        # No frame a valid shadow-table entry maps may be free.
        mmc = self.system.mmc
        table = getattr(mmc, "shadow_table", None)
        if table is not None:
            entries = table._entries
            valid = (entries & VALID_BIT) != 0
            for idx in table._bad_parity:
                valid[idx] = False
            mapped = entries[valid] & PFN_MASK
            doomed: List[int] = [
                p for p in mapped.tolist() if p in free
            ]
            if doomed:
                fail(
                    f"frame {doomed[0]:#x} is on the free list but a "
                    "valid shadow-table entry maps it"
                )
        # No frame backing a real (non-shadow) process mapping may be
        # free either.
        for process in self.system.kernel._processes.values():
            for mapping in process.page_table.mappings():
                if mm.is_shadow(mapping.pbase):
                    continue
                first = mapping.pbase >> BASE_PAGE_SHIFT
                pages = mapping.size >> BASE_PAGE_SHIFT
                for pfn in range(first, first + pages):
                    if pfn in free:
                        fail(
                            f"frame {pfn:#x} backs "
                            f"{mapping.vbase:#010x} of process "
                            f"{process.name!r} but is on the free list"
                        )
