"""A2 — bucket vs buddy shadow-region allocation.

The paper's static Figure 2 buckets can run dry for a popular size; the
buddy system it suggests as future work splits larger regions to keep
serving the same stream.
"""

from repro.bench import run_allocator_ablation


def test_allocator_ablation(benchmark):
    result = benchmark.pedantic(
        run_allocator_ablation, rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
    assert result.buddy_failures <= result.bucket_failures
