"""Backend-equivalence suite (DESIGN.md §16).

The load-bearing guarantee of the TranslationBackend refactor: the
default ``mtlb`` backend is the pre-refactor translation path moved,
not changed.  ``tests/data/backend_baseline.json`` pins full RunStats
and store fingerprints captured at the commit *preceding* the refactor;
every run here must reproduce them bit-for-bit.

The new backends get the complementary treatment: they must run every
paper workload end-to-end — including under the sanitizer, whose
backend hook re-audits their private structures against the live page
tables — and obey their designed invariants (victima never changes the
CPU TLB's miss count; coalescing never adds misses and fires under
contiguous frames).

Lockstep (scalar-vs-vector) coverage is mtlb-only by construction:
non-mtlb backends declare ``vector_config_supported() == False`` in v1,
so there is no second engine to lockstep against — the sanitized runs
here are their deep-check stand-in.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.api import ScenarioSpec, Session
from repro.bench.runner import BenchContext
from repro.sim.config import (
    paper_base,
    paper_mtlb,
    paper_promotion,
)
from repro.sim.system import System
from repro.workloads import PAPER_SUITE

BASELINE = json.loads(
    (
        Path(__file__).parent.parent / "data" / "backend_baseline.json"
    ).read_text()
)

FACTORIES = {
    "paper_base": paper_base,
    "paper_mtlb96": lambda: paper_mtlb(96),
    "paper_promotion": paper_promotion,
}


@pytest.fixture(scope="module")
def context(tmp_path_factory):
    return BenchContext(
        quick=True,
        scales=dict(BASELINE["scales"]),
        cache_dir=tmp_path_factory.mktemp("traces"),
        seed=BASELINE["seed"],
    )


class TestMtlbBitIdentity:
    @pytest.mark.parametrize("workload", sorted(PAPER_SUITE))
    @pytest.mark.parametrize("label", sorted(FACTORIES))
    def test_stats_match_pre_refactor_baseline(
        self, context, workload, label
    ):
        want = BASELINE["stats"].get(f"{workload}|{label}")
        if want is None:
            pytest.skip("combination not pinned in the baseline")
        result = context.run(workload, FACTORIES[label]())
        got = dataclasses.asdict(result.stats)
        assert got == want, (
            f"backend='mtlb' diverged from the pre-refactor stats for "
            f"{workload}|{label}"
        )


class TestNewBackendsEndToEnd:
    @pytest.mark.parametrize("backend", ["coalesced", "victima"])
    def test_sanitized_run_is_green(self, context, backend):
        """The sanitizer's backend hook audits the backend's private
        state (pool/directory lockstep, installed-range freshness)
        at every boundary; a clean run is the deep-check."""
        config = dataclasses.replace(
            paper_base(), backend=backend, sanitize=True
        )
        result = context.run("em3d", config)
        assert result.stats.total_cycles > 0

    def test_sanitized_coalesced_contiguous_run_is_green(self, context):
        config = dataclasses.replace(
            paper_base(),
            backend="coalesced",
            fragmentation="none",
            sanitize=True,
        )
        result = context.run("em3d", config)
        assert result.stats.total_cycles > 0

    def test_victima_never_changes_the_miss_count(self, context):
        """Pool hits must only cheapen refills: the CPU TLB sees the
        same insert sequence either way, so its miss count — and
        everything downstream of it — is bit-identical to the
        conventional baseline."""
        base = context.run("em3d", paper_base()).stats
        vict = context.run(
            "em3d",
            dataclasses.replace(paper_base(), backend="victima"),
        ).stats
        assert vict.tlb_misses == base.tlb_misses
        assert vict.total_cycles <= base.total_cycles

    def test_coalescing_fires_under_contiguous_frames(self, context):
        base = context.run("em3d", paper_base()).stats
        contig = context.run(
            "em3d",
            dataclasses.replace(
                paper_base(), backend="coalesced", fragmentation="none"
            ),
        ).stats
        assert contig.tlb_misses < base.tlb_misses

    @pytest.mark.parametrize("backend", ["coalesced", "victima"])
    def test_reach_reported(self, backend):
        config = dataclasses.replace(paper_base(), backend=backend)
        system = System(config)
        assert system.backend.reach_bytes(system) >= 0
        assert system.backend.name == backend


class TestBackendSweeps:
    def test_backend_specs_sweep_and_cache(self, context, tmp_path):
        """A backend spec through the real scenario service: it must
        execute, commit to the content-addressed store under a
        backend-aware fingerprint, and be served from cache on the
        resweep — without colliding with the mtlb run's address."""
        session = Session(
            quick=True,
            scales=dict(BASELINE["scales"]),
            cache_dir=tmp_path / "cache",
            seed=BASELINE["seed"],
            store=tmp_path / "store",
        )
        specs = [
            ScenarioSpec("em3d", paper_base(), seed=BASELINE["seed"]),
            ScenarioSpec(
                "em3d",
                paper_base(),
                seed=BASELINE["seed"],
                backend="coalesced",
            ),
            ScenarioSpec(
                "em3d",
                paper_base(),
                seed=BASELINE["seed"],
                backend="victima",
            ),
        ]
        reports = session.sweep(specs)
        assert all(r.ok for r in reports)
        fingerprints = [r.fingerprint for r in reports]
        assert len(set(fingerprints)) == 3  # backend is in the address
        assert (
            reports[0].fingerprint
            == BASELINE["fingerprints"]["em3d|paper_base"]
        )
        again = session.sweep(specs)
        assert all(r.cache_hit for r in again)
        for first, second in zip(reports, again):
            assert first.stats == second.stats
