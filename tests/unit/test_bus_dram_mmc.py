"""Unit tests for the bus, DRAM and memory-controller models."""

import pytest

from repro.core.mtlb import Mtlb, MtlbFault
from repro.core.shadow_table import ShadowPageTable
from repro.mem.bus import Bus, BusTiming
from repro.mem.dram import Dram, DramTiming
from repro.mem.mmc import (
    BadPhysicalAddress,
    MemoryController,
    MmcTiming,
)


class TestBus:
    def test_fill_latency(self):
        bus = Bus()
        # Request: 2 bus cycles at 2:1 = 4 CPU; return: 4 beats = 8 CPU.
        assert bus.fill_request_cycles() == 4
        assert bus.fill_return_cycles() == 8

    def test_writeback_occupies_but_is_counted(self):
        bus = Bus()
        cycles = bus.writeback_cycles()
        assert cycles == (2 + 4) * 2
        assert bus.stats.writeback_transactions == 1

    def test_utilisation(self):
        bus = Bus()
        bus.fill_request_cycles()
        bus.fill_return_cycles()
        assert 0.0 < bus.utilisation(1000) < 0.02
        assert bus.utilisation(0) == 0.0

    def test_custom_ratio(self):
        bus = Bus(BusTiming(cpu_cycles_per_bus_cycle=3))
        assert bus.fill_request_cycles() == 6


class TestDram:
    def test_row_hit_faster(self):
        dram = Dram()
        first = dram.access_cycles(0x1000)
        second = dram.access_cycles(0x1008)
        assert first == DramTiming().row_miss_cycles
        assert second == DramTiming().row_hit_cycles

    def test_bank_conflict_reopens_row(self):
        timing = DramTiming(banks=2)
        dram = Dram(timing)
        dram.access_cycles(0x0000)  # row 0, bank 0
        dram.access_cycles(0x2000 * 2)  # row 4 -> bank 0, different row
        assert dram.access_cycles(0x0000) == timing.row_miss_cycles

    def test_stats(self):
        dram = Dram()
        dram.access_cycles(0)
        dram.access_cycles(8)
        assert dram.stats.accesses == 2
        assert dram.stats.row_hit_rate == 0.5


@pytest.fixture
def mmc_pair(memory_map):
    table = ShadowPageTable(memory_map, table_base=0)
    mtlb = Mtlb(table, entries=128, associativity=2)
    mmc = MemoryController(
        memory_map, Dram(), MmcTiming(), shadow_table=table, mtlb=mtlb
    )
    return mmc, table


class TestMmc:
    def test_dram_fill_plain(self, memory_map):
        mmc = MemoryController(memory_map, Dram())
        result = mmc.cache_fill(0x1000, exclusive=False)
        assert result.real_paddr == 0x1000
        assert not result.mtlb_filled
        # No MTLB: no shadow-check cycle. base(2) + row-miss(8) = 10 MMC
        # cycles = 20 CPU cycles.
        assert result.cpu_cycles == 20

    def test_shadow_fill_translates(self, mmc_pair, memory_map):
        mmc, table = mmc_pair
        table.set_mapping(0x240, pfn=0x4012)
        paddr = memory_map.shadow_base + (0x240 << 12) + 0x80
        result = mmc.cache_fill(paddr, exclusive=False)
        assert result.real_paddr == (0x4012 << 12) | 0x80
        assert result.mtlb_filled  # first touch fills the MTLB

    def test_shadow_fill_hit_is_cheaper(self, mmc_pair, memory_map):
        mmc, table = mmc_pair
        table.set_mapping(3, pfn=0x99)
        paddr = memory_map.shadow_base + (3 << 12)
        first = mmc.cache_fill(paddr, exclusive=False)
        second = mmc.cache_fill(paddr + 32, exclusive=False)
        assert not second.mtlb_filled
        assert second.cpu_cycles < first.cpu_cycles

    def test_exclusive_fill_sets_dirty(self, mmc_pair, memory_map):
        mmc, table = mmc_pair
        table.set_mapping(5, pfn=0x42)
        mmc.cache_fill(memory_map.shadow_base + (5 << 12), exclusive=True)
        assert table.entry(5).dirty

    def test_fault_propagates(self, mmc_pair, memory_map):
        mmc, table = mmc_pair
        table.set_mapping(7, pfn=0x11, valid=False)
        with pytest.raises(MtlbFault):
            mmc.cache_fill(memory_map.shadow_base + (7 << 12), False)

    def test_unbacked_address_rejected(self, mmc_pair, memory_map):
        mmc, _ = mmc_pair
        with pytest.raises(BadPhysicalAddress):
            mmc.cache_fill(memory_map.dram_size + 4096, False)
        with pytest.raises(BadPhysicalAddress):
            mmc.cache_fill(0xF000_0000, False)

    def test_shadow_without_mtlb_rejected(self, memory_map):
        mmc = MemoryController(memory_map, Dram())
        with pytest.raises(BadPhysicalAddress):
            mmc.cache_fill(memory_map.shadow_base, False)

    def test_writeback_translates_shadow(self, mmc_pair, memory_map):
        mmc, table = mmc_pair
        table.set_mapping(9, pfn=0x55)
        cycles = mmc.writeback(memory_map.shadow_base + (9 << 12) + 64)
        assert cycles > 0
        assert table.entry(9).dirty  # a writeback is an exclusive access

    def test_control_writes_purge_mtlb(self, mmc_pair, memory_map):
        mmc, table = mmc_pair
        table.set_mapping(4, pfn=0x10)
        paddr = memory_map.shadow_base + (4 << 12)
        mmc.cache_fill(paddr, False)  # cached in MTLB
        mmc.write_mapping(4, pfn=0x20)
        result = mmc.cache_fill(paddr, False)
        assert result.real_paddr == 0x20 << 12  # new frame visible

    def test_resolve_is_pure(self, mmc_pair, memory_map):
        mmc, table = mmc_pair
        table.set_mapping(2, pfn=0x77)
        paddr = memory_map.shadow_base + (2 << 12) + 8
        assert mmc.resolve(paddr) == (0x77 << 12) + 8
        assert not table.entry(2).referenced  # no accounting side effect
        assert mmc.resolve(0x1234) == 0x1234

    def test_mtlb_requires_table(self, memory_map):
        table = ShadowPageTable(memory_map, table_base=0)
        mtlb = Mtlb(table)
        with pytest.raises(ValueError):
            MemoryController(memory_map, Dram(), mtlb=mtlb)
        with pytest.raises(ValueError):
            MemoryController(memory_map, Dram(), shadow_table=table)

    def test_avg_fill_stat(self, mmc_pair):
        mmc, _ = mmc_pair
        mmc.cache_fill(0x1000, False)
        mmc.cache_fill(0x2000, False)
        assert mmc.stats.avg_fill_cpu_cycles > 0
