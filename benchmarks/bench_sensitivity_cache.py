"""S1 — cache associativity sensitivity on em3d (MTLB machine).

Context for Figure 4's absolute numbers: how much of em3d's memory time
is direct-mapped conflict misses.  Also exercises the generic
set-associative cache model in a measured configuration.
"""

from repro.bench import run_cache_sensitivity


def test_cache_sensitivity(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_cache_sensitivity(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
