"""The HeapBuilder (trace generation) and the kernel's SbrkAllocator
(simulation) must agree byte-for-byte on every address they hand out —
otherwise traces would reference memory the simulated kernel never
mapped.  This pins the two implementations together.
"""

import pytest

from repro.trace.events import HeapGrow, MapRegion, Remap
from repro.trace.trace import Trace
from repro.workloads.base import HeapBuilder

ALLOC_SIZES = [64, 128, 24, 4096, 100_000, 8, 8, 3_000_000, 64, 512]


@pytest.fixture
def kernel_process(mtlb_system):
    process = mtlb_system.kernel.create_process("sbrk")
    return mtlb_system, process


def test_addresses_match_kernel_allocator(kernel_process):
    system, process = kernel_process
    trace = Trace("heap")
    builder = HeapBuilder(
        trace, heap_base=process.heap_base,
        initial_prealloc=1 << 20, increment=512 << 10,
    )
    builder_addrs = [builder.alloc(n) for n in ALLOC_SIZES]

    allocator = system.kernel.sbrk_allocator(
        process, initial_prealloc=1 << 20, increment=512 << 10
    )
    kernel_addrs = [allocator.sbrk(n) for n in ALLOC_SIZES]
    assert builder_addrs == kernel_addrs
    assert builder.brk == process.brk


def test_builder_events_cover_allocations(kernel_process):
    _system, _process = kernel_process
    trace = Trace("heap")
    builder = HeapBuilder(
        trace, heap_base=0x1000_0000,
        initial_prealloc=256 << 10, increment=128 << 10,
    )
    addrs = [builder.alloc(n) for n in ALLOC_SIZES]
    mapped = []
    for event in trace.events():
        if isinstance(event, (MapRegion, HeapGrow)):
            mapped.append((event.vaddr, event.vaddr + event.length))
    for addr in addrs:
        assert any(lo <= addr < hi for lo, hi in mapped)


def test_builder_emits_remap_per_growth(kernel_process):
    trace = Trace("heap")
    builder = HeapBuilder(
        trace, heap_base=0x1000_0000,
        initial_prealloc=64 << 10, increment=64 << 10,
    )
    builder.alloc(60 << 10)
    builder.alloc(60 << 10)
    maps = [e for e in trace.events() if isinstance(e, MapRegion)]
    remaps = [e for e in trace.events() if isinstance(e, Remap)]
    assert len(maps) == len(remaps) == builder.growths == 2
    for m, r in zip(maps, remaps):
        assert (m.vaddr, m.length) == (r.vaddr, r.length)
