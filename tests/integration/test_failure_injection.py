"""Failure-injection tests: the system degrades loudly, not silently.

Exhausted shadow pools, exhausted DRAM, accesses to unbacked physical
addresses, and OS-protocol violations (writing back through an
invalidated shadow mapping) must all surface as the specific exceptions
the layers define — never as wrong translations.  The ``faults``-marked
classes exercise the deterministic fault-injection layer end to end:
every injected hardware fault must be *recovered* through its
architected path (DESIGN.md "Fault model and recovery"), with the
functional memory contents and final translations identical to a
fault-free reference run.
"""

import dataclasses

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE, PhysicalMemoryMap
from repro.core.mtlb import MtlbFault
from repro.core.shadow_space import (
    BucketShadowAllocator,
    ShadowSpaceExhausted,
)
from repro.errors import UnrecoverableMemoryError
from repro.faults import (
    DIRTY_DROP,
    DRAM_TRANSIENT,
    MTLB_PARITY,
    SHADOW_BITFLIP,
    FaultConfig,
)
from repro.mem.mmc import BadPhysicalAddress
from repro.os_model.frames import OutOfMemory
from repro.sim.config import paper_mtlb, paper_promotion
from repro.sim.system import System

REGION = 0x0200_0000


def _drain(allocator, *sizes):
    """Hoard every free region of the given bucket sizes."""
    hoard = []
    for size in sizes:
        hoard.extend(
            allocator.allocate(size)
            for _ in range(allocator.available(size))
        )
    return hoard


class TestShadowExhaustion:
    def test_remap_demotes_when_pool_dry(self, mtlb_system):
        """Default policy: a dry 64 KB bucket demotes the plan to four
        16 KB shadow superpages instead of failing the remap."""
        system = mtlb_system
        process = system.kernel.create_process("dry")
        allocator = system.kernel.shadow_allocator
        hoard = _drain(allocator, 64 << 10)
        system.kernel.sys_map(process, REGION, 64 << 10)
        report = system.kernel.sys_remap(process, REGION, 64 << 10)
        assert report.degraded_superpages == 1
        assert report.superpages_created == 4
        assert report.pages_remapped == 16
        assert report.fallback_pages == 0
        mapping = process.page_table.lookup(REGION)
        assert mapping.is_superpage and mapping.size == 16 << 10
        assert system.kernel.vm.degraded_remap_events == 1
        for region in hoard:
            allocator.free(region)

    def test_remap_falls_back_to_base_pages_when_all_dry(self, mtlb_system):
        """With 64 KB *and* 16 KB buckets dry, the remap leaves the
        region on its existing base pages (graceful degradation's
        floor) instead of raising."""
        system = mtlb_system
        process = system.kernel.create_process("dry")
        allocator = system.kernel.shadow_allocator
        hoard = _drain(allocator, 64 << 10, 16 << 10)
        system.kernel.sys_map(process, REGION, 64 << 10)
        report = system.kernel.sys_remap(process, REGION, 64 << 10)
        # One degradation for the 64 KB plan + one per 16 KB sub-plan.
        assert report.degraded_superpages == 5
        assert report.superpages_created == 0
        assert report.fallback_pages == 16
        assert not process.page_table.lookup(REGION).is_superpage
        for region in hoard:
            allocator.free(region)

    def test_remap_raises_with_abort_policy(self):
        """degradation_policy="abort" restores the fail-fast behaviour."""
        config = dataclasses.replace(
            paper_mtlb(96), degradation_policy="abort"
        )
        system = System(config)
        process = system.kernel.create_process("dry")
        allocator = system.kernel.shadow_allocator
        hoard = _drain(allocator, 64 << 10)
        system.kernel.sys_map(process, REGION, 64 << 10)
        with pytest.raises(ShadowSpaceExhausted):
            system.kernel.sys_remap(process, REGION, 64 << 10)
        for region in hoard:
            allocator.free(region)

    def test_promotion_survives_exhaustion(self):
        system = System(paper_promotion(96, misses_per_page=0.1))
        process = system.kernel.create_process("dry")
        allocator = system.kernel.shadow_allocator
        # Drain every size the 64 KB region could demote to, so the
        # promotion's remap degrades all the way to base pages.
        hoard = _drain(allocator, 64 << 10, 16 << 10)
        system.kernel.sys_map(process, REGION, 64 << 10)
        promo = system.kernel.promotion
        # Hammer misses; promotion fires, fails gracefully, and never
        # retries the dead candidate.
        for i in range(64):
            promo.note_miss(REGION + (i % 16) * BASE_PAGE_SIZE)
        assert promo.stats.exhaustion_failures == 1
        assert promo.stats.promotions == 0
        assert not process.page_table.lookup(REGION).is_superpage
        for region in hoard:
            allocator.free(region)


class TestDramExhaustion:
    def test_map_raises_out_of_memory(self):
        config = dataclasses.replace(
            paper_mtlb(96),
            memory_map=PhysicalMemoryMap(dram_size=64 << 20),
        )
        system = System(config)
        process = system.kernel.create_process("hog")
        with pytest.raises(OutOfMemory):
            # 64 MB DRAM minus kernel reservation cannot back 256 MB.
            system.kernel.sys_map(process, REGION, 256 << 20)


class TestUnbackedAddresses:
    def test_fill_outside_dram_and_shadow(self, mtlb_system):
        with pytest.raises(BadPhysicalAddress):
            mtlb_system.mmc.cache_fill(0xA000_0000, exclusive=False)

    def test_io_hole_never_treated_as_shadow(self, mtlb_system):
        with pytest.raises(BadPhysicalAddress):
            mtlb_system.mmc.cache_fill(0xF800_0000, exclusive=False)


class TestProtocolViolations:
    def test_writeback_through_invalid_mapping_asserts(self, mtlb_system):
        """Section 4: writebacks can never fault because the OS flushes
        before invalidating.  If a (buggy) OS violates that, the model
        fails fast instead of writing to the wrong frame."""
        system = mtlb_system
        table = system.shadow_table
        table.set_mapping(5, pfn=0x123, valid=False)
        shadow_paddr = system.config.memory_map.shadow_base + (5 << 12)
        with pytest.raises(AssertionError):
            system.mmc.writeback(shadow_paddr)

    def test_fill_through_invalid_mapping_faults_precisely(
        self, mtlb_system
    ):
        system = mtlb_system
        table = system.shadow_table
        table.set_mapping(7, pfn=0x321, valid=False)
        shadow_paddr = system.config.memory_map.shadow_base + (7 << 12)
        with pytest.raises(MtlbFault) as exc:
            system.mmc.cache_fill(shadow_paddr, exclusive=True)
        assert exc.value.shadow_index == 7
        assert table.entry(7).fault  # recorded for the OS

    def test_unknown_shadow_page_faults(self, mtlb_system):
        """A shadow page the OS never mapped: valid bit clear in the
        zero-initialised table, so the access faults rather than
        reaching frame 0."""
        shadow_paddr = (
            mtlb_system.config.memory_map.shadow_base + (999 << 12)
        )
        with pytest.raises(MtlbFault):
            mtlb_system.mmc.cache_fill(shadow_paddr, exclusive=False)


class TestAllocatorMisuse:
    def test_colored_allocation_validates(self, memory_map):
        allocator = BucketShadowAllocator(memory_map)
        with pytest.raises(ValueError):
            allocator.allocate_colored(64 << 10, color=200, colors=128)
        with pytest.raises(ValueError):
            allocator.allocate_colored(8 << 10, color=0, colors=128)


# ---------------------------------------------------------------------- #
# Injected-fault recovery paths (the tentpole of the fault model)
# ---------------------------------------------------------------------- #


def _faulty_system(fault_config, check_every=1):
    """An MTLB machine with fault injection and the oracle checker on."""
    config = dataclasses.replace(
        paper_mtlb(96),
        faults=fault_config,
        check_translations=check_every,
    )
    return System(config)


def _shadowed_region(system, pages=16):
    """Map + remap a region onto a shadow superpage; store known words."""
    process = system.kernel.create_process("faulty")
    system.kernel.sys_map(process, REGION, pages * BASE_PAGE_SIZE)
    system.kernel.sys_remap(process, REGION, pages * BASE_PAGE_SIZE)
    for i in range(pages):
        system.store_word(process, REGION + i * BASE_PAGE_SIZE, 0xC0DE + i)
    return process


def _touch_all(system, process, pages=16, lines=2, is_write=False):
    """Timed accesses over *lines* cache lines of each page."""
    for line in range(lines):
        for i in range(pages):
            system.touch(
                process,
                REGION + i * BASE_PAGE_SIZE + line * 32,
                is_write=is_write,
            )


def _assert_recovered_and_intact(system, process, pages=16):
    """Every injection recovered, no corruption left, data intact."""
    plan = system.fault_plan
    assert plan.stats.total_injected >= 1
    assert plan.stats.total_injected == plan.stats.total_recovered
    assert system.shadow_table.corrupt_entries == 0
    for i in range(pages):
        value = system.load_word(process, REGION + i * BASE_PAGE_SIZE)
        assert value == 0xC0DE + i


@pytest.mark.faults
class TestParityRecovery:
    def test_mtlb_parity_flush_and_refill_converges(self):
        """A corrupted cached way trips parity; the kernel's
        flush-and-refill + scrub recovers and the run converges."""
        system = _faulty_system(
            FaultConfig(triggers=((MTLB_PARITY, 3), (MTLB_PARITY, 7)))
        )
        process = _shadowed_region(system)
        _touch_all(system, process, lines=3)
        assert system.mtlb.stats.parity_faults == 2
        assert system.kernel.stats.parity_faults_serviced == 2
        _assert_recovered_and_intact(system, process)

    def test_shadow_bitflip_scrub_repairs_from_records(self):
        """An in-DRAM entry bitflip is caught at fill time and rewritten
        from the kernel's superpage records during the scrub."""
        system = _faulty_system(
            FaultConfig(triggers=((SHADOW_BITFLIP, 5),))
        )
        process = _shadowed_region(system)
        _touch_all(system, process)
        assert system.mtlb.stats.parity_faults == 1
        assert system.kernel.stats.parity_faults_serviced == 1
        assert system.kernel.stats.scrub_rewrites == 1
        _assert_recovered_and_intact(system, process)

    def test_parity_recovery_counts_reach_run_stats(self):
        """Injected/recovered totals surface in the harvested RunStats."""
        system = _faulty_system(
            FaultConfig(triggers=((SHADOW_BITFLIP, 5),))
        )
        process = _shadowed_region(system)
        _touch_all(system, process)
        system._harvest_component_stats()
        assert system.stats.faults_injected == 1
        assert system.stats.faults_recovered == 1
        assert system.stats.extra["faults_injected_shadow_bitflip"] == 1
        assert system.stats.oracle_checks >= 1


@pytest.mark.faults
class TestDirtyDropRecovery:
    def test_dropped_bit_writeback_retries_on_next_access(self):
        system = _faulty_system(FaultConfig(triggers=((DIRTY_DROP, 1),)))
        process = _shadowed_region(system)
        # Two write rounds over each page: the dropped first-time dirty
        # write-back is retried (and recovered) by the second round.
        _touch_all(system, process, lines=2, is_write=True)
        plan = system.fault_plan
        assert plan.stats.injected[DIRTY_DROP] == 1
        assert plan.stats.recovered[DIRTY_DROP] == 1
        record = system.kernel.vm.record_for_shadow_index(
            system.config.memory_map.shadow_page_index(
                next(iter(system.kernel.vm.shadow_superpages))
            )
        )
        first = record.first_shadow_index
        # Every touched page ended up dirty despite the drop.
        for i in range(16):
            assert system.shadow_table.entry(first + i).dirty
        _assert_recovered_and_intact(system, process)


@pytest.mark.faults
class TestTransientDramRecovery:
    def test_transient_error_retried_with_backoff(self):
        system = _faulty_system(
            FaultConfig(triggers=((DRAM_TRANSIENT, 4), (DRAM_TRANSIENT, 9)))
        )
        process = _shadowed_region(system)
        _touch_all(system, process)
        plan = system.fault_plan
        assert plan.stats.injected[DRAM_TRANSIENT] == 2
        assert plan.stats.recovered[DRAM_TRANSIENT] == 2
        assert system.mmc.stats.transient_retries == 2
        _assert_recovered_and_intact(system, process)

    def test_persistent_error_raises_after_retry_bound(self):
        """A stuck-at error (rate 1.0) exhausts the bounded retries."""
        system = _faulty_system(
            FaultConfig(dram_transient_rate=1.0, max_retries=3)
        )
        process = system.kernel.create_process("stuck")
        system.kernel.sys_map(process, REGION, BASE_PAGE_SIZE)
        with pytest.raises(UnrecoverableMemoryError) as exc:
            system.touch(process, REGION)
        assert exc.value.attempts == 4


@pytest.mark.faults
class TestFaultFreeEquivalence:
    def test_recovered_run_matches_fault_free_reference(self):
        """Same workload, with and without injected faults: the functional
        outcome (loaded values and final translations) is identical."""
        faulty = _faulty_system(
            FaultConfig(
                triggers=(
                    (MTLB_PARITY, 2),
                    (SHADOW_BITFLIP, 7),
                    (DIRTY_DROP, 1),
                    (DRAM_TRANSIENT, 11),
                )
            )
        )
        clean = System(paper_mtlb(96))
        results = []
        for system in (faulty, clean):
            process = _shadowed_region(system)
            _touch_all(system, process, lines=2, is_write=True)
            results.append(
                [
                    system.load_word(
                        process, REGION + i * BASE_PAGE_SIZE
                    )
                    for i in range(16)
                ]
            )
        assert results[0] == results[1]
        assert faulty.fault_plan.stats.total_injected >= 4
