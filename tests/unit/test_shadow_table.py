"""Unit tests for the flat shadow-to-physical mapping table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.shadow_table import (
    ENTRY_BYTES,
    PFN_MASK,
    ShadowEntry,
    ShadowPageTable,
)


class TestEntryEncoding:
    @given(
        st.integers(min_value=0, max_value=PFN_MASK),
        st.booleans(), st.booleans(), st.booleans(), st.booleans(),
    )
    def test_roundtrip(self, pfn, valid, fault, ref, dirty):
        entry = ShadowEntry(
            pfn=pfn, valid=valid, fault=fault, referenced=ref, dirty=dirty
        )
        assert ShadowEntry.decode(entry.encode()) == entry

    def test_encoding_fits_32_bits(self):
        entry = ShadowEntry(
            pfn=PFN_MASK, valid=True, fault=True, referenced=True, dirty=True
        )
        assert entry.encode() < 1 << 32


class TestShadowPageTable:
    def test_size_matches_paper(self, shadow_table, memory_map):
        # 512 MB shadow window at 4 KB pages -> 128K 4-byte entries ->
        # 512 KB of memory (0.1% overhead), per Section 2.2.
        assert shadow_table.size_bytes == 512 << 10
        assert shadow_table.size_bytes == memory_map.shadow_pages * ENTRY_BYTES

    def test_entry_paddr_is_shifted_index(self, shadow_table):
        # The paper's fill example: index 0x0240 << 2 + base.
        assert shadow_table.entry_paddr(0x0240) == 0x0240 << 2

    def test_set_and_read_mapping(self, shadow_table):
        shadow_table.set_mapping(7, pfn=0x04012)
        entry = shadow_table.entry(7)
        assert entry.valid and entry.pfn == 0x04012
        assert not entry.referenced and not entry.dirty

    def test_pfn_range_checked(self, shadow_table):
        with pytest.raises(ValueError):
            shadow_table.set_mapping(0, pfn=1 << 24)

    def test_invalidate_keeps_pfn(self, shadow_table):
        shadow_table.set_mapping(3, pfn=42)
        shadow_table.invalidate(3)
        entry = shadow_table.entry(3)
        assert not entry.valid and entry.pfn == 42

    def test_revalidate_with_new_frame(self, shadow_table):
        shadow_table.set_mapping(3, pfn=42)
        shadow_table.invalidate(3, fault=True)
        shadow_table.revalidate(3, pfn=99)
        entry = shadow_table.entry(3)
        assert entry.valid and entry.pfn == 99 and not entry.fault

    def test_accounting_bits(self, shadow_table):
        shadow_table.set_mapping(1, pfn=5)
        shadow_table.set_referenced(1)
        assert shadow_table.entry(1).referenced
        shadow_table.set_dirty(1)
        entry = shadow_table.entry(1)
        assert entry.dirty and entry.referenced
        shadow_table.clear_referenced(1)
        assert not shadow_table.entry(1).referenced
        assert shadow_table.entry(1).dirty  # dirty survives ref clear
        shadow_table.clear_dirty(1)
        assert not shadow_table.entry(1).dirty

    def test_dirty_implies_referenced(self, shadow_table):
        shadow_table.set_mapping(2, pfn=5)
        shadow_table.set_dirty(2)
        assert shadow_table.entry(2).referenced

    def test_clear_mapping(self, shadow_table):
        shadow_table.set_mapping(9, pfn=123)
        shadow_table.clear_mapping(9)
        entry = shadow_table.entry(9)
        assert not entry.valid and entry.pfn == 0

    def test_entries_in_range(self, shadow_table):
        for i in range(4, 8):
            shadow_table.set_mapping(i, pfn=i * 10)
        got = dict(shadow_table.entries_in_range(4, 4))
        assert sorted(got) == [4, 5, 6, 7]
        assert got[6].pfn == 60

    def test_table_must_fit_in_dram(self, memory_map):
        with pytest.raises(ValueError):
            ShadowPageTable(memory_map, table_base=memory_map.dram_size - 4096)
        with pytest.raises(ValueError):
            ShadowPageTable(memory_map, table_base=0x8000_0000)

    def test_read_raw_matches_decoded(self, shadow_table):
        shadow_table.set_mapping(11, pfn=0x1234)
        raw = shadow_table.read_raw(11)
        assert ShadowEntry.decode(raw) == shadow_table.entry(11)
