"""Unit tests for the hashed page table."""

import pytest

from repro.os_model.hpt import HPT_ENTRY_BYTES, HashedPageTable
from repro.os_model.page_table import PageTable


@pytest.fixture
def setup():
    page_table = PageTable()
    hpt = HashedPageTable(
        base_paddr=0x8_0000,
        buckets=1024,
        overflow_entries=256,
        resolver=lambda vpn: page_table.lookup(vpn << 12),
    )
    return page_table, hpt


class TestGeometry:
    def test_paper_size(self):
        hpt = HashedPageTable(base_paddr=0)
        # 16K entries x 16 bytes, as in Section 3.2.
        assert hpt.table_bytes == 16 * 1024 * 16

    def test_bucket_count_power_of_two(self):
        with pytest.raises(ValueError):
            HashedPageTable(base_paddr=0, buckets=1000)


class TestProbeInstall:
    def test_empty_probe_touches_head(self, setup):
        _pt, hpt = setup
        mapping, touched = hpt.probe(5)
        assert mapping is None
        assert len(touched) == 1
        assert touched[0] >= 0x8_0000

    def test_preload_then_probe(self, setup):
        page_table, hpt = setup
        mapping = page_table.map_base_page(5 << 12, pfn=77)
        hpt.preload(5, mapping)
        found, touched = hpt.probe(5)
        assert found is mapping
        assert len(touched) == 1

    def test_install_consults_resolver(self, setup):
        page_table, hpt = setup
        page_table.map_base_page(9 << 12, pfn=3)
        mapping, written = hpt.install(9)
        assert mapping is not None and mapping.pbase == 3 << 12
        assert len(written) == 1
        # Subsequent probes find it.
        found, _ = hpt.probe(9)
        assert found is mapping

    def test_install_unmapped_returns_none(self, setup):
        _pt, hpt = setup
        mapping, written = hpt.install(1234)
        assert mapping is None and written == []

    def test_collision_chain_walk(self, setup):
        page_table, hpt = setup
        # Two VPNs hashing to the same bucket (1024 buckets).
        vpn_a, vpn_b = 7, 7 + 1024
        assert hpt._hash(vpn_a) == hpt._hash(vpn_b)
        ma = page_table.map_base_page(vpn_a << 12, pfn=1)
        mb = page_table.map_base_page(vpn_b << 12, pfn=2)
        hpt.preload(vpn_a, ma)
        hpt.preload(vpn_b, mb)
        found, touched = hpt.probe(vpn_b)
        assert found is mb
        assert len(touched) == 2  # walked the chain
        # Overflow entries live past the primary table.
        assert touched[1] >= 0x8_0000 + hpt.table_bytes

    def test_reinstall_updates_in_place(self, setup):
        page_table, hpt = setup
        m1 = page_table.map_base_page(3 << 12, pfn=1)
        hpt.preload(3, m1)
        page_table.unmap_range(3 << 12, 4096)
        m2 = page_table.map_base_page(3 << 12, pfn=9)
        hpt.preload(3, m2)
        found, touched = hpt.probe(3)
        assert found is m2
        assert len(touched) == 1
        assert hpt.resident_entries == 1


class TestPurge:
    def test_purge_vpn(self, setup):
        page_table, hpt = setup
        m = page_table.map_base_page(4 << 12, pfn=1)
        hpt.preload(4, m)
        assert hpt.purge_vpn(4)
        found, _ = hpt.probe(4)
        assert found is None
        assert not hpt.purge_vpn(4)

    def test_purge_range_by_mapping_overlap(self, setup):
        page_table, hpt = setup
        sp = page_table.map_superpage(0x40_0000, 0x8000_0000, 16 << 10)
        hpt.preload(0x40_0000 >> 12, sp)
        other = page_table.map_base_page(0x90_0000, pfn=7)
        hpt.preload(0x90_0000 >> 12, other)
        removed = hpt.purge_range(0x40_0000, 16 << 10)
        assert removed == 1
        assert hpt.probe(0x40_0000 >> 12)[0] is None
        assert hpt.probe(0x90_0000 >> 12)[0] is other

    def test_stats(self, setup):
        page_table, hpt = setup
        m = page_table.map_base_page(2 << 12, pfn=1)
        hpt.preload(2, m)
        hpt.probe(2)
        hpt.probe(3)
        assert hpt.stats.probes == 2
        assert hpt.stats.avg_chain_walk >= 1.0
