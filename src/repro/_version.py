"""Single source of the package version.

Kept in its own leaf module so deep subsystems (``repro.obs.snapshot``
stamps it into metrics snapshots, ``repro.serve.store`` into result-store
payloads) can import it without touching ``repro/__init__`` — which
imports *them* during package init.
"""

__version__ = "1.1.0"
