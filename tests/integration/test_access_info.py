"""E8 — Section 2.5: per-base-page access information.

The MTLB maintains *exact* per-base-page dirty bits (the MMC sees every
exclusive fill and every writeback, and the OS only clears dirty after
cleaning a page, which flushes its lines) but only *approximate*
referenced bits (re-references that hit in the CPU cache never reach the
MMC).  These tests demonstrate both halves, plus the payoff: paging out
a shadow superpage writes only its dirty base pages to disk.
"""

import numpy as np
import pytest

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.sim.config import paper_mtlb
from repro.sim.system import System
from repro.trace.events import MapRegion, Remap
from repro.trace.trace import Trace, make_segment

REGION = 0x0200_0000
PAGES = 16
SIZE = PAGES * BASE_PAGE_SIZE


def _run_trace(store_pages, load_pages):
    """Run a trace touching whole pages: stores to some, loads to others.

    Returns (system, record) with the region remapped to one superpage.
    """
    trace = Trace("accessinfo")
    trace.add(MapRegion(REGION, SIZE))
    trace.add(Remap(REGION, SIZE))
    addrs = []
    writes = []
    for page in sorted(set(store_pages) | set(load_pages)):
        for line in range(0, BASE_PAGE_SIZE, 32):
            addrs.append(REGION + page * BASE_PAGE_SIZE + line)
            writes.append(page in store_pages)
    trace.add(
        make_segment(
            "touch", np.array(addrs, dtype=np.int64),
            write_mask=np.array(writes), gap=2,
        )
    )
    system = System(paper_mtlb(96))
    system.run(trace)
    process = system.kernel.current
    mapping = process.page_table.lookup(REGION)
    record = system.kernel.vm.superpage_record(mapping.pbase)
    return system, record


def _flush_region(system, record):
    """OS cleaning pass: flush the region so dirty data reaches the MMC."""
    system.flush_virtual_range(record.process, record.vbase, SIZE)


class TestDirtyBitsExact:
    def test_dirty_exactly_matches_stored_pages(self):
        store_pages = {2, 5, 11}
        load_pages = {0, 1, 3, 7}
        system, record = _run_trace(store_pages, load_pages)
        _flush_region(system, record)
        table = system.shadow_table
        dirty = {
            i
            for i in range(PAGES)
            if table.entry(record.first_shadow_index + i).dirty
        }
        assert dirty == store_pages

    def test_no_false_dirty_from_loads(self):
        system, record = _run_trace(set(), {0, 4, 9})
        _flush_region(system, record)
        table = system.shadow_table
        assert not any(
            table.entry(record.first_shadow_index + i).dirty
            for i in range(PAGES)
        )


class TestReferencedBitsApproximate:
    def test_touched_pages_referenced(self):
        touched = {1, 6, 8}
        system, record = _run_trace(set(), touched)
        table = system.shadow_table
        referenced = {
            i
            for i in range(PAGES)
            if table.entry(record.first_shadow_index + i).referenced
        }
        assert touched <= referenced

    def test_cache_hides_rereferences(self):
        """After the OS clears a referenced bit, re-touching a line that
        is still cached produces no MMC traffic, so the bit stays clear —
        the paper's acknowledged loss of precision."""
        system, record = _run_trace(set(), {3})
        table = system.shadow_table
        idx = record.first_shadow_index + 3
        assert table.entry(idx).referenced
        table.clear_referenced(idx)
        system.mmc.mtlb.purge(idx)
        # Re-access the same (still cached) line functionally through the
        # cache model: a hit generates no fill.
        vaddr = REGION + 3 * BASE_PAGE_SIZE
        paddr = record.process.page_table.translate(vaddr)
        assert system.cache.probe(vaddr, paddr)
        result = system.cache.access(vaddr, paddr, False)
        assert result.hit
        assert not table.entry(idx).referenced  # information was lost


class TestSelectiveSwap:
    def test_only_dirty_pages_pay_disk_writes(self):
        store_pages = {2, 5}
        load_pages = set(range(PAGES)) - store_pages
        system, record = _run_trace(store_pages, load_pages)
        _flush_region(system, record)
        pager = system.kernel.pager
        for page in range(PAGES):
            pager.page_out(record, page)
        assert pager.stats.pages_out == PAGES
        assert pager.stats.dirty_writebacks == len(store_pages)
        assert pager.stats.clean_drops == PAGES - len(store_pages)

    def test_conventional_superpage_would_write_everything(self):
        """The contrast the paper draws: without per-base-page dirty
        bits, the OS must assume the whole superpage is dirty."""
        store_pages = {2}
        system, record = _run_trace(store_pages, set(range(PAGES)))
        _flush_region(system, record)
        table = system.shadow_table
        dirty_pages = sum(
            1
            for i in range(PAGES)
            if table.entry(record.first_shadow_index + i).dirty
        )
        disk_bytes_selective = dirty_pages * BASE_PAGE_SIZE
        disk_bytes_conventional = SIZE
        assert disk_bytes_selective == BASE_PAGE_SIZE
        assert disk_bytes_conventional == 16 * disk_bytes_selective
