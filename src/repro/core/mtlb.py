"""The Memory-Controller TLB (paper Section 2.2).

The MTLB caches shadow-page -> real-frame translations inside the main
memory controller.  Compared to a CPU TLB it can afford to be big and
simple: it supports a single base page size, needs only one port, and uses
a modest set-associative structure (default 128 entries, 2-way) with
not-recently-used replacement.  Misses are filled by hardware with a single
DRAM load from the flat :class:`~repro.core.shadow_table.ShadowPageTable`.

The MTLB also maintains the per-base-page *referenced*/*dirty* bits that
make shadow-backed superpages pageable at base-page granularity
(Section 2.5): a shared cache fill marks the base page referenced, an
exclusive fill marks it dirty.  An access to an entry whose valid bit is
clear raises :class:`MtlbFault`, modelling the precise-exception signalling
discussed in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import MtlbParityFault
from ..faults import DIRTY_DROP, FAULT_SITES, MTLB_PARITY, SHADOW_BITFLIP, FaultPlan
from ..obs.tracer import FAULT_INJECTED, MTLB_FAULT, MTLB_FILL
from .addrspace import is_power_of_two
from .shadow_table import PFN_MASK, VALID_BIT, ShadowPageTable

#: Fault-site ordinals carried in ``fault_injected`` event payloads.
_SITE_ORDINAL = {site: i for i, site in enumerate(FAULT_SITES)}


class MtlbFault(Exception):
    """An access touched a shadow base page whose mapping is not valid.

    The MMC turns this into a (simulated) precise exception — the paper's
    bad-parity trick — and the OS services it as a page fault.
    """

    def __init__(self, shadow_index: int, is_write: bool) -> None:
        super().__init__(
            f"MTLB fault on shadow page {shadow_index:#x} "
            f"({'write' if is_write else 'read'})"
        )
        self.shadow_index = shadow_index
        self.is_write = is_write


@dataclass
class MtlbStats:
    """Event counters for one MTLB instance."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    faults: int = 0
    purges: int = 0
    evictions: int = 0
    #: Parity faults detected (injected corruption caught by hardware).
    parity_faults: int = 0
    #: First-time referenced/dirty bit updates that would be written
    #: back to the in-DRAM table (Section 3.4 notes the simulated MTLB
    #: skipped this; ablation A9 charges it and checks "negligible").
    bit_writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 if there were none)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def metrics_snapshot(self) -> Dict[str, int]:
        """Flat counter mapping for the machine's metrics registry."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "faults": self.faults,
            "purges": self.purges,
            "evictions": self.evictions,
            "parity_faults": self.parity_faults,
            "bit_writebacks": self.bit_writebacks,
        }


@dataclass
class _Way:
    """One MTLB entry: a cached copy of a shadow-table entry."""

    shadow_index: int
    pfn: int
    valid: bool
    nru_referenced: bool = True
    #: Accounting bits already propagated to the in-DRAM table by this
    #: cached copy (further accesses need no table update).
    ref_written: bool = False
    dirty_written: bool = False
    #: A first-time accounting-bit write-back was dropped (injected
    #: fault); the next qualifying access retries it.
    dropped_bit_write: bool = False


class Mtlb:
    """Set-associative, NRU-replacement memory-controller TLB.

    ``associativity=0`` selects full associativity (one set of
    ``entries`` ways), matching the "full" configurations of Figure 4.
    """

    def __init__(
        self,
        table: ShadowPageTable,
        entries: int = 128,
        associativity: int = 2,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if associativity == 0:
            associativity = entries
        if associativity < 0 or entries % associativity:
            raise ValueError(
                f"{entries} entries cannot be divided into "
                f"{associativity}-way sets"
            )
        num_sets = entries // associativity
        if not is_power_of_two(num_sets):
            raise ValueError(f"number of sets ({num_sets}) must be a power of 2")
        self.table = table
        self.entries = entries
        self.associativity = associativity
        self.num_sets = num_sets
        self._set_mask = num_sets - 1
        self._sets: List[Dict[int, _Way]] = [dict() for _ in range(num_sets)]
        #: Fault-injection schedule; None disables every injection site
        #: (and every PRNG draw), keeping the fault layer a strict no-op.
        self.fault_plan = fault_plan
        self.stats = MtlbStats()
        #: Observability event sink (None = null sink): ``mtlb_fill``
        #: per hardware fill, ``mtlb_fault`` per invalid-mapping fault,
        #: ``fault_injected`` when the fault plan fires here.
        self.tracer = None
        #: Set by :meth:`access` when the access updated an accounting
        #: bit for the first time on this cached way; the MMC consumes
        #: it to charge the (optional) table write-back.
        self.pending_bit_write = False

    # ------------------------------------------------------------------ #
    # Lookup / fill
    # ------------------------------------------------------------------ #

    def probe(self, shadow_index: int) -> Optional[_Way]:
        """Return the cached way for *shadow_index* without counting stats."""
        return self._sets[shadow_index & self._set_mask].get(shadow_index)

    def access(
        self, shadow_index: int, is_write: bool, inject: bool = True
    ) -> Tuple[int, bool]:
        """Translate shadow base page *shadow_index* to a real PFN.

        Returns ``(pfn, filled)`` where *filled* is True if the access
        missed in the MTLB and required a hardware fill (one DRAM access,
        which the caller charges for).  Updates the per-base-page
        referenced/dirty bits in the shadow page table.  Raises
        :class:`MtlbFault` if the mapping is not valid and
        :class:`~repro.errors.MtlbParityFault` if (injected) corruption
        trips the parity check on a cached way or a fill read.

        *inject* gates the fault-injection sites: the writeback path
        passes False, because parity recovery needs kernel service that
        the (buffered, non-faulting) writeback path cannot deliver —
        faults are modelled on the fill/translation path only.
        """
        self.stats.lookups += 1
        plan = self.fault_plan if inject else None
        way_set = self._sets[shadow_index & self._set_mask]
        way = way_set.get(shadow_index)
        filled = False
        if way is not None:
            self.stats.hits += 1
            if plan is not None and plan.fires(MTLB_PARITY):
                # The cached way's parity check trips: hardware drops
                # the way and signals a precise parity fault for the
                # kernel to flush-and-refill.
                del way_set[shadow_index]
                self.stats.parity_faults += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        FAULT_INJECTED, _SITE_ORDINAL[MTLB_PARITY]
                    )
                raise MtlbParityFault(shadow_index, origin="mtlb")
            way.nru_referenced = True
        else:
            self.stats.misses += 1
            way = self._fill(shadow_index, way_set, plan)
            filled = True
            if self.tracer is not None:
                self.tracer.emit(MTLB_FILL, shadow_index, way.pfn)
        if not way.valid:
            self.stats.faults += 1
            self.table.set_fault(shadow_index)
            if self.tracer is not None:
                self.tracer.emit(
                    MTLB_FAULT, shadow_index, 1 if is_write else 0
                )
            raise MtlbFault(shadow_index, is_write)
        self.pending_bit_write = False
        if is_write:
            first = not way.dirty_written
            if first and plan is not None and plan.fires(DIRTY_DROP):
                way.dropped_bit_write = True
                if self.tracer is not None:
                    self.tracer.emit(
                        FAULT_INJECTED, _SITE_ORDINAL[DIRTY_DROP]
                    )
            else:
                self.table.set_dirty(shadow_index)
                if first:
                    way.dirty_written = True
                    way.ref_written = True
                    self._complete_bit_write(way)
        else:
            first = not way.ref_written
            if first and plan is not None and plan.fires(DIRTY_DROP):
                way.dropped_bit_write = True
                if self.tracer is not None:
                    self.tracer.emit(
                        FAULT_INJECTED, _SITE_ORDINAL[DIRTY_DROP]
                    )
            else:
                self.table.set_referenced(shadow_index)
                if first:
                    way.ref_written = True
                    self._complete_bit_write(way)
        return way.pfn, filled

    def _complete_bit_write(self, way: _Way) -> None:
        """A first-time accounting-bit write-back reached the table."""
        if way.dropped_bit_write:
            # This write-back retries one that an injected fault
            # dropped earlier: the retry *is* the recovery.
            way.dropped_bit_write = False
            if self.fault_plan is not None:
                self.fault_plan.record_recovery(DIRTY_DROP)
        self.pending_bit_write = True
        self.stats.bit_writebacks += 1

    def _fill(
        self,
        shadow_index: int,
        way_set: Dict[int, _Way],
        plan: Optional[FaultPlan] = None,
    ) -> _Way:
        """Hardware fill: load the packed entry from the in-DRAM table."""
        self.stats.fills += 1
        if plan is not None and plan.fires(SHADOW_BITFLIP):
            # A bit of the in-DRAM entry flips just as the fill engine
            # reads it; the corruption persists in the table until the
            # kernel scrubs and rewrites the entry.
            self.table.corrupt(
                shadow_index, plan.choose_bit(SHADOW_BITFLIP)
            )
            if self.tracer is not None:
                self.tracer.emit(
                    FAULT_INJECTED, _SITE_ORDINAL[SHADOW_BITFLIP]
                )
        if not self.table.parity_ok(shadow_index):
            self.stats.parity_faults += 1
            raise MtlbParityFault(shadow_index, origin="table")
        raw = self.table.read_raw(shadow_index)
        way = _Way(
            shadow_index=shadow_index,
            pfn=raw & PFN_MASK,
            valid=bool(raw & VALID_BIT),
        )
        if len(way_set) >= self.associativity:
            self._evict(way_set)
        way_set[shadow_index] = way
        return way

    def _evict(self, way_set: Dict[int, _Way]) -> None:
        """NRU eviction: prefer a way whose referenced bit is clear."""
        victim_key = None
        for key, way in way_set.items():
            if not way.nru_referenced:
                victim_key = key
                break
        if victim_key is None:
            # All ways recently used: clear every referenced bit, then
            # evict the first way (standard NRU epoch reset).
            for way in way_set.values():
                way.nru_referenced = False
            victim_key = next(iter(way_set))
        del way_set[victim_key]
        self.stats.evictions += 1

    # ------------------------------------------------------------------ #
    # OS control-register operations (uncached writes in the paper)
    # ------------------------------------------------------------------ #

    def purge(self, shadow_index: int) -> None:
        """Invalidate any cached copy of one shadow page's mapping."""
        way_set = self._sets[shadow_index & self._set_mask]
        if way_set.pop(shadow_index, None) is not None:
            self.stats.purges += 1

    def purge_range(self, first_index: int, count: int) -> None:
        """Invalidate cached mappings for a run of shadow base pages."""
        for idx in range(first_index, first_index + count):
            self.purge(idx)

    def purge_all(self) -> None:
        """Invalidate the whole MTLB."""
        for way_set in self._sets:
            self.stats.purges += len(way_set)
            way_set.clear()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def occupancy(self) -> int:
        """Number of currently cached translations."""
        return sum(len(s) for s in self._sets)

    def metrics_snapshot(self) -> Dict[str, int]:
        """Counters this MTLB registers into the metrics registry."""
        return self.stats.metrics_snapshot()

    def cached_indices(self) -> List[int]:
        """Return the shadow page indices currently cached (for tests)."""
        out: List[int] = []
        for way_set in self._sets:
            out.extend(way_set.keys())
        return sorted(out)
