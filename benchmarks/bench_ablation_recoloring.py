"""A7 — no-copy page recoloring via shadow memory (Section 6).

Two hot pages sharing a cache color in a physically indexed
direct-mapped cache thrash each other; renaming one through shadow
memory removes the conflict without copying any data.
"""

from repro.bench import run_recoloring_ablation


def test_recoloring_ablation(benchmark):
    result = benchmark.pedantic(
        run_recoloring_ablation, rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
    assert result.miss_rate_before > 0.9
    assert result.miss_rate_after < 0.1
