"""Unit tests for all-shadow mode and no-copy page recoloring."""

import dataclasses

import pytest

from repro.core.addrspace import BASE_PAGE_SIZE
from repro.ext.recoloring import Recolorer
from repro.os_model.page_table import MappingError
from repro.sim.config import CacheConfig, paper_mtlb, paper_no_mtlb
from repro.sim.system import System

REGION = 0x0200_0000


@pytest.fixture
def all_shadow_system():
    config = dataclasses.replace(
        paper_mtlb(96), use_superpages=False, all_shadow=True
    )
    system = System(config)
    process = system.kernel.create_process("allshadow")
    return system, process


class TestAllShadow:
    def test_ptes_are_shadow_named(self, all_shadow_system):
        system, process = all_shadow_system
        system.kernel.sys_map(process, REGION, 32 << 10)
        for offset in range(0, 32 << 10, BASE_PAGE_SIZE):
            mapping = process.page_table.lookup(REGION + offset)
            assert system.config.memory_map.is_shadow(mapping.pbase)

    def test_translation_reaches_real_frames(self, all_shadow_system):
        system, process = all_shadow_system
        system.kernel.sys_map(process, REGION, 16 << 10)
        shadow_paddr = process.page_table.translate(REGION + 8)
        real = system.mmc.resolve(shadow_paddr)
        assert system.config.memory_map.is_dram(real)

    def test_functional_data_intact(self, all_shadow_system):
        system, process = all_shadow_system
        system.kernel.sys_map(process, REGION, 16 << 10)
        system.store_word(process, REGION + 512, 0xFEED)
        assert system.load_word(process, REGION + 512) == 0xFEED

    def test_all_traffic_goes_through_mtlb(self, all_shadow_system):
        system, process = all_shadow_system
        system.kernel.sys_map(process, REGION, 16 << 10)
        before = system.mtlb.stats.lookups
        for offset in range(0, 16 << 10, 32):
            system.touch(process, REGION + offset)
        assert system.mtlb.stats.lookups > before

    def test_remap_in_place_rejected(self, all_shadow_system):
        system, process = all_shadow_system
        system.kernel.sys_map(process, REGION, 16 << 10)
        with pytest.raises(MappingError):
            system.kernel.vm.remap_to_shadow(process, REGION, 16 << 10)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(paper_no_mtlb(96), all_shadow=True)
        with pytest.raises(ValueError):
            dataclasses.replace(paper_mtlb(96), all_shadow=True)


@pytest.fixture
def recolor_machine():
    config = dataclasses.replace(
        paper_mtlb(96),
        cache=CacheConfig(physically_indexed=True),
        fragmentation="none",
    )
    system = System(config)
    process = system.kernel.create_process("recolor")
    return system, process


class TestRecoloring:
    def test_requires_physical_indexing(self, mtlb_system):
        with pytest.raises(ValueError):
            Recolorer(mtlb_system)

    def test_requires_mtlb(self):
        system = System(
            dataclasses.replace(
                paper_no_mtlb(96),
                cache=CacheConfig(physically_indexed=True),
            )
        )
        with pytest.raises(ValueError):
            Recolorer(system)

    def test_color_count(self, recolor_machine):
        system, _process = recolor_machine
        recolorer = Recolorer(system)
        assert recolorer.colors == (512 << 10) // BASE_PAGE_SIZE  # 128

    def test_recolor_changes_effective_color(self, recolor_machine):
        system, process = recolor_machine
        system.kernel.sys_map(process, REGION, BASE_PAGE_SIZE)
        recolorer = Recolorer(system)
        old = recolorer.color_of_page(process, REGION)
        target = (old + 7) % recolorer.colors
        cycles = recolorer.recolor_page(process, REGION, target)
        assert cycles > 0
        assert recolorer.color_of_page(process, REGION) == target

    def test_recolor_preserves_data(self, recolor_machine):
        system, process = recolor_machine
        system.kernel.sys_map(process, REGION, BASE_PAGE_SIZE)
        system.store_word(process, REGION + 64, 0xC0DE)
        recolorer = Recolorer(system)
        recolorer.recolor_page(process, REGION, 5)
        assert system.load_word(process, REGION + 64) == 0xC0DE

    def test_double_recolor_rejected(self, recolor_machine):
        system, process = recolor_machine
        system.kernel.sys_map(process, REGION, BASE_PAGE_SIZE)
        recolorer = Recolorer(system)
        recolorer.recolor_page(process, REGION, 5)
        with pytest.raises(MappingError):
            recolorer.recolor_page(process, REGION, 6)

    def test_conflict_histogram(self, recolor_machine):
        system, process = recolor_machine
        recolorer = Recolorer(system)
        # Sequential frames: 130 pages wrap the 128 colors, so two
        # colors carry two hot pages each.
        system.kernel.sys_map(process, REGION, 130 * BASE_PAGE_SIZE)
        pages = [
            REGION + i * BASE_PAGE_SIZE for i in range(130)
        ]
        histogram = recolorer.conflict_histogram(process, pages)
        assert sum(histogram.values()) == 130
        assert max(histogram.values()) == 2

    def test_auto_recolor_spreads_colors(self, recolor_machine):
        system, process = recolor_machine
        recolorer = Recolorer(system)
        colors = recolorer.colors
        # Map three pages that all share one color.
        bases = [0x0200_0000, 0x0300_0000, 0x0400_0000]
        system.kernel.sys_map(process, bases[0], BASE_PAGE_SIZE)
        for b in bases[1:]:
            system.kernel.sys_map(
                process, b - (colors - 1) * BASE_PAGE_SIZE,
                (colors - 1) * BASE_PAGE_SIZE,
            )
            system.kernel.sys_map(process, b, BASE_PAGE_SIZE)
        page_colors = {
            recolorer.color_of_page(process, b) for b in bases
        }
        assert len(page_colors) == 1  # all conflicting
        moved, cycles = recolorer.auto_recolor(process, bases)
        assert moved == 2 and cycles > 0
        final = {recolorer.color_of_page(process, b) for b in bases}
        assert len(final) == 3
