"""repro.obs — the observability subsystem (DESIGN.md §9).

Four pieces, composable but independent:

* :mod:`~repro.obs.tracer` — ring-buffered, numpy-backed structured
  event log with named sites and a null-sink fast path;
* :mod:`~repro.obs.registry` — counters / gauges / histograms that
  components register into (``RunStats`` is rebuilt as a view over it);
* :mod:`~repro.obs.attribution` — phase-resolved Figure-3 cycle
  breakdown over simulated time, exported as Chrome-trace JSON
  (Perfetto-loadable) and CSV;
* :mod:`~repro.obs.snapshot` / :mod:`~repro.obs.diff` — the
  standardized metrics-snapshot format and the run-to-run regression
  diff behind ``repro metrics dump`` / ``repro metrics diff``.
"""

from .attribution import (
    CATEGORIES,
    PhaseAttributor,
    PhaseBucket,
    PhaseSample,
    attribution_csv,
)
from .chrome_trace import build_chrome_trace, write_chrome_trace
from .collector import ObsCollector, ObsConfig
from .diff import (
    DiffReport,
    MetricDelta,
    diff_snapshots,
    metric_regressed,
    parse_threshold,
)
from .prom import render_prometheus, render_prometheus_mapping
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .snapshot import (
    SCHEMA,
    load_snapshot,
    matrix_snapshot,
    results_snapshot,
    run_snapshot,
    stats_metrics,
    write_snapshot,
)
from .tracer import (
    NULL_TRACER,
    SITES,
    SITE_IDS,
    EventTracer,
    NullTracer,
    TraceEvent,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "DiffReport",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsCollector",
    "ObsConfig",
    "PhaseAttributor",
    "PhaseBucket",
    "PhaseSample",
    "SCHEMA",
    "SITES",
    "SITE_IDS",
    "TraceEvent",
    "attribution_csv",
    "build_chrome_trace",
    "diff_snapshots",
    "load_snapshot",
    "matrix_snapshot",
    "metric_regressed",
    "parse_threshold",
    "render_prometheus",
    "render_prometheus_mapping",
    "results_snapshot",
    "run_snapshot",
    "stats_metrics",
    "write_chrome_trace",
    "write_snapshot",
]
