"""Run statistics: raw counters and the derived metrics the paper reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import StatsConsistencyError


@dataclass
class RunStats:
    """Cycle and event totals for one simulated run.

    Cycle categories are disjoint and sum to ``total_cycles``:

    * ``instruction_cycles`` — instruction issue (including single-cycle
      cache hits);
    * ``memory_stall_cycles`` — processor stalls on cache fills for
      ordinary program references;
    * ``tlb_miss_cycles`` — the software TLB miss handler, *including*
      the memory-system time of its hashed-page-table probes (this is the
      "TLB miss time" fraction of Figure 3);
    * ``kernel_cycles`` — boot/exec/exit, syscalls (remap, sbrk growth,
      cache flushing), timer ticks, and MTLB fault service.
    """

    total_cycles: int = 0
    instruction_cycles: int = 0
    memory_stall_cycles: int = 0
    tlb_miss_cycles: int = 0
    kernel_cycles: int = 0

    instructions: int = 0
    references: int = 0

    tlb_lookups: int = 0
    tlb_misses: int = 0
    itlb_transitions: int = 0
    itlb_main_misses: int = 0

    cache_accesses: int = 0
    cache_misses: int = 0
    cache_writebacks: int = 0

    fills: int = 0
    fill_stall_cycles: int = 0

    mtlb_lookups: int = 0
    mtlb_misses: int = 0
    mtlb_faults: int = 0

    remap_pages: int = 0
    remap_cycles: int = 0
    remap_flush_cycles: int = 0

    #: Fault injection / recovery (zero unless a FaultConfig is set).
    faults_injected: int = 0
    faults_recovered: int = 0
    #: Superpage plans demoted or left on base pages because shadow
    #: space was exhausted (graceful-degradation path).
    degraded_remaps: int = 0
    #: Oracle translation cross-checks performed (check_translations=N).
    oracle_checks: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #

    @property
    def tlb_miss_rate(self) -> float:
        """CPU TLB misses per lookup."""
        return self.tlb_misses / self.tlb_lookups if self.tlb_lookups else 0.0

    @property
    def tlb_time_fraction(self) -> float:
        """Fraction of total runtime spent handling CPU TLB misses."""
        return (
            self.tlb_miss_cycles / self.total_cycles
            if self.total_cycles
            else 0.0
        )

    @property
    def cache_hit_rate(self) -> float:
        """Data cache hit rate."""
        return (
            1.0 - self.cache_misses / self.cache_accesses
            if self.cache_accesses
            else 0.0
        )

    @property
    def mtlb_hit_rate(self) -> float:
        """MTLB hit rate (0.0 when no MTLB or no shadow traffic)."""
        return (
            1.0 - self.mtlb_misses / self.mtlb_lookups
            if self.mtlb_lookups
            else 0.0
        )

    @property
    def avg_fill_cycles(self) -> float:
        """Average processor-visible latency per cache fill, CPU cycles.

        The Figure 4(B) metric: bus + MMC (+ MTLB) time per fill.
        """
        return self.fill_stall_cycles / self.fills if self.fills else 0.0

    @property
    def cpi(self) -> float:
        """Effective cycles per instruction."""
        return (
            self.total_cycles / self.instructions if self.instructions else 0.0
        )

    def check_consistency(self) -> None:
        """Raise :class:`~repro.errors.StatsConsistencyError` if the
        cycle categories do not add up to the reported total."""
        parts = (
            self.instruction_cycles
            + self.memory_stall_cycles
            + self.tlb_miss_cycles
            + self.kernel_cycles
        )
        if parts != self.total_cycles:
            raise StatsConsistencyError(
                f"cycle categories sum to {parts}, total is "
                f"{self.total_cycles}"
            )
