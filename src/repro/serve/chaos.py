"""Service-layer chaos: deterministic failure injection for sweeps.

PR 1 proved the *simulated hardware's* recovery paths with seeded
:class:`~repro.faults.FaultPlan` injection; this module does the same
for the *scenario service* (DESIGN.md §13).  A :class:`ChaosPlan` is
seeded exactly like a fault plan — each named site owns a private PRNG
seeded from ``(seed, site)`` plus a consultation counter, via the
shared :class:`~repro.faults.schedule.SiteSchedule` machinery — and is
consulted by the supervisor at two kinds of sites:

**dispatch sites** (consulted once per scenario dispatch, the decision
ships to the worker as a :class:`ChaosDirective`):

* ``worker_kill`` — the worker SIGKILLs itself before touching the
  scenario (models an OOM kill / segfault; the supervisor must respawn
  and retry exactly that scenario);
* ``worker_stall`` — the worker sleeps far past any deadline (models a
  hang; the watchdog must hard-kill it within deadline + grace);
* ``slow_shard`` — the worker sleeps a small latency before running
  (models a loaded machine; nothing should fail, results identical);

**commit sites** (consulted once per store commit, applied in the
supervising process):

* ``store_corrupt`` — a byte of the just-written record is flipped
  (the commit verifier must catch it via the store's CRC and rewrite);
* ``store_enospc`` / ``store_eio`` — the commit raises ``OSError``
  (``ENOSPC``/``EIO``) before any byte is written (the supervisor must
  retry the commit with backoff).

The contract under test (``repro chaos soak``): under any chaos seed,
every non-poisoned scenario's stored result is **bit-identical** to a
chaos-free run — injection may cost retries and wall time, never
results.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.schedule import SiteSchedule, validate_sites

__all__ = [
    "CHAOS_SITES",
    "ChaosConfig",
    "ChaosDirective",
    "ChaosPlan",
    "SoakReport",
    "SoakSeedOutcome",
    "default_chaos",
    "run_soak",
]

#: The named service-layer injection sites, in documentation order.
WORKER_KILL = "worker_kill"
WORKER_STALL = "worker_stall"
SLOW_SHARD = "slow_shard"
STORE_CORRUPT = "store_corrupt"
STORE_ENOSPC = "store_enospc"
STORE_EIO = "store_eio"

CHAOS_SITES: Tuple[str, ...] = (
    WORKER_KILL,
    WORKER_STALL,
    SLOW_SHARD,
    STORE_CORRUPT,
    STORE_ENOSPC,
    STORE_EIO,
)

#: Dispatch-time sites (decided in the parent, executed in the worker).
DISPATCH_SITES: Tuple[str, ...] = (WORKER_KILL, WORKER_STALL, SLOW_SHARD)

#: Commit-time sites (decided and applied in the supervising process).
COMMIT_SITES: Tuple[str, ...] = (STORE_CORRUPT, STORE_ENOSPC, STORE_EIO)


@dataclass(frozen=True)
class ChaosConfig:
    """Chaos-injection knobs; the all-zero default is a strict no-op.

    Rates are per-consultation probabilities in ``[0, 1]``;
    ``triggers`` pins injections to exact consultation counts (1-based,
    per site) — the form directed tests use.  ``stall_seconds`` is how
    long a stalled worker sleeps (far past any sane deadline, so the
    watchdog *must* kill it); ``slow_seconds`` is the slow-shard
    latency.
    """

    seed: int = 2024
    worker_kill_rate: float = 0.0
    worker_stall_rate: float = 0.0
    slow_shard_rate: float = 0.0
    store_corrupt_rate: float = 0.0
    store_enospc_rate: float = 0.0
    store_eio_rate: float = 0.0
    #: Exact-fire points: ((site, consultation_number), ...), 1-based.
    triggers: Tuple[Tuple[str, int], ...] = ()
    stall_seconds: float = 3600.0
    slow_seconds: float = 0.05

    def __post_init__(self) -> None:
        validate_sites(
            CHAOS_SITES,
            {site: self.rate_of(site) for site in CHAOS_SITES},
            self.triggers,
        )
        if self.stall_seconds <= 0:
            raise ValueError("stall_seconds must be positive")
        if self.slow_seconds < 0:
            raise ValueError("slow_seconds must be non-negative")

    def rate_of(self, site: str) -> float:
        """Return the probabilistic rate configured for *site*."""
        return getattr(self, f"{site}_rate")

    @property
    def enabled(self) -> bool:
        """True if any injection can ever fire (rates or triggers)."""
        return bool(self.triggers) or any(
            self.rate_of(site) > 0.0 for site in CHAOS_SITES
        )


def default_chaos(seed: int) -> ChaosConfig:
    """The ``--chaos``/soak rate mix: every site exercised, sweep still
    expected to complete (transient injections are retried, only
    repeated deterministic failures poison)."""
    return ChaosConfig(
        seed=seed,
        worker_kill_rate=0.06,
        worker_stall_rate=0.03,
        slow_shard_rate=0.10,
        store_corrupt_rate=0.06,
        store_enospc_rate=0.04,
        store_eio_rate=0.03,
    )


@dataclass(frozen=True)
class ChaosDirective:
    """The dispatch-site decisions for one scenario, shipped to its
    worker alongside the spec (picklable, inert when all-default)."""

    kill: bool = False
    stall_seconds: Optional[float] = None
    slow_seconds: Optional[float] = None

    @property
    def active(self) -> bool:
        return bool(
            self.kill
            or self.stall_seconds is not None
            or self.slow_seconds is not None
        )


class ChaosPlan:
    """The seeded, per-site chaos schedule for one sweep.

    The supervisor consults :meth:`dispatch_directive` once per
    scenario dispatch and :meth:`commit_fault` /
    :meth:`corrupts_commit` once per store commit.  Decisions are a
    pure function of ``(config, consultation order)``; the fired
    schedule is kept so tests can assert determinism.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self._sched = SiteSchedule(
            config.seed,
            CHAOS_SITES,
            {site: config.rate_of(site) for site in CHAOS_SITES},
            config.triggers,
        )
        #: Injections fired, per site.
        self.injected: Dict[str, int] = {site: 0 for site in CHAOS_SITES}

    @property
    def schedule(self) -> List[Tuple[str, int]]:
        """Every fired injection as (site, consultation_number)."""
        return self._sched.schedule

    def fires(self, site: str) -> bool:
        """Consult one site; True means inject now."""
        fired = self._sched.fires(site)
        if fired:
            self.injected[site] += 1
        return fired

    def consultations(self, site: str) -> int:
        return self._sched.consultations(site)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- site groups ----------------------------------------------------- #

    def dispatch_directive(self) -> ChaosDirective:
        """Consult the dispatch sites for one scenario dispatch."""
        kill = self.fires(WORKER_KILL)
        stall = self.fires(WORKER_STALL)
        slow = self.fires(SLOW_SHARD)
        return ChaosDirective(
            kill=kill,
            stall_seconds=self.config.stall_seconds if stall else None,
            slow_seconds=self.config.slow_seconds if slow else None,
        )

    def commit_fault(self) -> Optional[OSError]:
        """Consult the disk-fault commit sites; an OSError to raise
        *instead of* writing, or None to let the commit proceed."""
        if self.fires(STORE_ENOSPC):
            return OSError(
                errno.ENOSPC, "injected chaos: no space left on device"
            )
        if self.fires(STORE_EIO):
            return OSError(errno.EIO, "injected chaos: input/output error")
        return None

    def corrupts_commit(self) -> bool:
        """Consult the corruption-on-write site for one commit."""
        return self.fires(STORE_CORRUPT)


def corrupt_record_file(path: Path) -> bool:
    """Flip one byte of a just-written record (the corruption-on-write
    injection's disk effect).  Returns False when the file is absent
    (e.g. the commit itself was skipped on a read-only store)."""
    try:
        blob = bytearray(path.read_bytes())
    except OSError:
        return False
    if not blob:
        return False
    blob[len(blob) // 2] ^= 0xFF
    try:
        path.write_bytes(bytes(blob))
    except OSError:
        return False
    return True


# ====================================================================== #
# Chaos soak: sweeps under randomized chaos must match a clean run
# ====================================================================== #


@dataclass
class SoakSeedOutcome:
    """One chaos seed's verdict against the clean baseline."""

    seed: int
    ok: bool
    entries: int = 0
    matched: int = 0
    poisoned: List[str] = field(default_factory=list)
    injected: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    max_kill_overshoot: float = 0.0
    problems: List[str] = field(default_factory=list)


@dataclass
class SoakReport:
    """The full soak verdict: every seed vs the chaos-free baseline."""

    clean_entries: int
    outcomes: List[SoakSeedOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def render(self) -> str:
        lines = [
            f"chaos soak: {len(self.outcomes)} seed(s) vs a clean run "
            f"of {self.clean_entries} stored result(s)"
        ]
        for o in self.outcomes:
            verdict = "ok" if o.ok else "FAIL"
            injected = sum(o.injected.values())
            lines.append(
                f"  seed {o.seed}: [{verdict}] {o.matched}/{o.entries} "
                f"bit-identical, {len(o.poisoned)} poisoned, "
                f"{injected} injection(s), max kill overshoot "
                f"{o.max_kill_overshoot:.2f}s"
            )
            for label in o.poisoned:
                lines.append(f"    poisoned: {label}")
            for problem in o.problems:
                lines.append(f"    problem: {problem}")
        return "\n".join(lines)


def _store_records(store) -> Dict[str, bytes]:
    """Every committed record's raw bytes by fingerprint (the payload
    .npz is pinned through the record's embedded ``payload.crc``, so
    record-byte equality covers it)."""
    return {
        fp: store.record_path(fp).read_bytes() for fp in store.keys()
    }


def run_soak(
    specs: Sequence[object],
    store_root: Path,
    seeds: Sequence[int],
    jobs: int = 2,
    quick: Optional[bool] = None,
    scales: Optional[Dict[str, float]] = None,
    cache_dir: Optional[Path] = None,
    policy: Optional[object] = None,
    chaos_rates: Optional[ChaosConfig] = None,
    overshoot_margin: float = 2.0,
    progress=None,
) -> SoakReport:
    """Drive one clean sweep, then the same sweep under each chaos
    seed, and verify store bit-identity minus quarantined poison.

    *chaos_rates* (default :func:`default_chaos`) supplies the rate mix;
    its ``seed`` field is replaced by each soak seed in turn.  Every
    sweep runs with *policy* supervision (default
    :class:`~repro.serve.supervise.SupervisionPolicy` soak defaults) on
    *jobs* workers against a fresh store under *store_root*.
    """
    import dataclasses as _dc

    from ..api import Session
    from .client import SweepClient
    from .supervise import SupervisionPolicy

    if policy is None:
        policy = SupervisionPolicy(
            deadline_seconds=30.0, grace_seconds=2.0
        )
    store_root = Path(store_root)

    def _log(message: str) -> None:
        if progress is not None:
            progress(message)

    def _sweep(name: str, chaos: Optional[ChaosConfig]):
        session = Session(
            quick=quick, scales=scales, cache_dir=cache_dir,
            store=store_root / name, jobs=jobs,
        )
        client = SweepClient(
            session=session, jobs=jobs, policy=policy, chaos=chaos,
        )
        client.sweep(list(specs), raise_errors=False)
        return client

    _log(f"clean sweep: {len(specs)} scenario(s) on {jobs} worker(s)...")
    clean = _sweep("clean", None)
    clean_records = _store_records(clean.store)
    report = SoakReport(clean_entries=len(clean_records))

    base_rates = chaos_rates if chaos_rates is not None else default_chaos(0)
    for seed in seeds:
        chaos = _dc.replace(base_rates, seed=seed)
        _log(f"chaos sweep: seed {seed}...")
        client = _sweep(f"chaos{seed}", chaos)
        supervision = client.last_supervision
        outcome = SoakSeedOutcome(seed=seed, ok=True)
        if supervision is not None:
            outcome.poisoned = [
                record.label for record in supervision.poison
            ]
            outcome.max_kill_overshoot = max(
                supervision.kill_overshoots, default=0.0
            )
            if supervision.kill_overshoots and (
                outcome.max_kill_overshoot
                > policy.grace_seconds + overshoot_margin
            ):
                outcome.ok = False
                outcome.problems.append(
                    f"watchdog kill overshot deadline+grace by "
                    f"{outcome.max_kill_overshoot:.2f}s "
                    f"(grace {policy.grace_seconds:g}s "
                    f"+ margin {overshoot_margin:g}s)"
                )
        poisoned_fps = set()
        if supervision is not None:
            poisoned_fps = {
                record.fingerprint
                for record in supervision.poison
                if record.fingerprint
            }
        outcome.injected = dict(
            client.scheduler.chaos_plan.injected
            if client.scheduler.chaos_plan is not None else {}
        )
        outcome.counters = {
            name: value
            for name, value in client.registry.collect().items()
            if name.startswith("serve.")
        }
        chaos_records = _store_records(client.store)
        expected = {
            fp: blob for fp, blob in clean_records.items()
            if fp not in poisoned_fps
        }
        outcome.entries = len(expected)
        for fp, blob in expected.items():
            got = chaos_records.get(fp)
            if got is None:
                outcome.ok = False
                outcome.problems.append(
                    f"entry {fp[:12]}… missing from the chaos store"
                )
            elif got != blob:
                outcome.ok = False
                outcome.problems.append(
                    f"entry {fp[:12]}… differs from the clean run"
                )
            else:
                outcome.matched += 1
        extra = set(chaos_records) - set(clean_records)
        if extra:
            outcome.ok = False
            outcome.problems.append(
                f"{len(extra)} entr(ies) present only under chaos"
            )
        report.outcomes.append(outcome)
        _log(
            f"  seed {seed}: {outcome.matched}/{outcome.entries} "
            f"bit-identical, {len(outcome.poisoned)} poisoned"
        )
    return report
