"""SweepClient: the scenario service's programmatic front door.

:class:`SweepClient` is what ``repro serve sweep`` is built on, and what
a notebook or driver script should import: it owns a
:class:`~repro.api.Session` (trace cache + result store), exposes the
scheduler's async ``submit()``/``gather()`` pair for callers that want
to overlap batches, and a synchronous ``sweep()`` for everyone else::

    from repro import ScenarioSpec, SweepClient
    from repro.sim.config import figure3_configs

    client = SweepClient(store=".result_store", jobs=4)
    reports = client.sweep(
        [ScenarioSpec(w, cfg) for w in ("em3d", "gcc")
         for cfg in figure3_configs().values()]
    )
    print(f"{client.cache_hit_rate:.0%} served from the store")

Every sweep dedupes against the content-addressed store first, so a
rerun of yesterday's matrix costs a directory scan, not a simulation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..api import RunReport, ScenarioSpec, Session
from ..obs import MetricsRegistry
from .chaos import ChaosConfig, ChaosPlan
from .scheduler import SweepScheduler, SweepTicket
from .store import ResultStore, default_store_root
from .supervise import (
    ShutdownGuard,
    SupervisionPolicy,
    SupervisionReport,
)

__all__ = ["SweepClient"]


class SweepClient:
    """Submit scenario batches to the sharded, store-backed scheduler.

    *policy* tunes the pool's supervision (deadlines, retries, poison,
    breaker — :class:`~repro.serve.supervise.SupervisionPolicy`);
    *chaos* arms deterministic service-layer failure injection
    (:class:`~repro.serve.chaos.ChaosConfig`); *shutdown* wires a
    :class:`~repro.serve.supervise.ShutdownGuard` for graceful
    SIGINT/SIGTERM draining.  All three default to off/neutral.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        store: Union[None, str, Path, ResultStore] = None,
        jobs: Optional[int] = None,
        quick: Optional[bool] = None,
        seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        progress: bool = False,
        policy: Optional[SupervisionPolicy] = None,
        chaos: Optional[Union[ChaosConfig, ChaosPlan]] = None,
        shutdown: Optional[ShutdownGuard] = None,
    ) -> None:
        if session is None:
            kwargs: Dict[str, object] = {
                "store": store if store is not None
                else default_store_root(),
                "jobs": jobs,
            }
            if quick is not None:
                kwargs["quick"] = quick
            if seed is not None:
                kwargs["seed"] = seed
            session = Session(**kwargs)
        self.session = session
        self.scheduler = SweepScheduler(
            context=session.context,
            store=session.store,
            jobs=jobs if jobs is not None else session.jobs,
            registry=registry,
            progress_cb=(
                (lambda msg: print(msg, flush=True)) if progress else None
            ),
            policy=policy,
            chaos=chaos,
            shutdown=shutdown,
        )

    # -- async surface --------------------------------------------------- #

    async def submit(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
    ) -> SweepTicket:
        """Validate + launch a batch; completion events stream to
        *on_result* as ``(submission_index, RunReport)`` pairs."""
        return await self.scheduler.submit(specs, on_result=on_result)

    async def gather(
        self, ticket: SweepTicket, raise_errors: bool = True
    ) -> List[RunReport]:
        """Await a submitted batch; reports in submission order."""
        return await self.scheduler.gather(
            ticket, raise_errors=raise_errors
        )

    # -- sync surface ----------------------------------------------------- #

    def sweep(
        self,
        specs: Sequence[ScenarioSpec],
        on_result: Optional[Callable[[int, RunReport], None]] = None,
        raise_errors: bool = True,
    ) -> List[RunReport]:
        """Submit + gather one batch synchronously."""
        return self.scheduler.sweep(
            specs, on_result=on_result, raise_errors=raise_errors
        )

    def run(self, spec: ScenarioSpec) -> RunReport:
        """One scenario through the session (store-checked)."""
        return self.session.run(spec)

    # -- introspection ---------------------------------------------------- #

    @property
    def store(self) -> Optional[ResultStore]:
        return self.session.store

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of submitted scenarios served without simulating."""
        return self.scheduler.cache_hit_rate

    @property
    def registry(self) -> MetricsRegistry:
        """The scheduler's obs registry (queue depth, hits, wall times)."""
        return self.scheduler.registry

    @property
    def last_supervision(self) -> Optional[SupervisionReport]:
        """The most recent pool sweep's supervision report (retries,
        kills, poison, overshoots); None for serial sweeps."""
        return self.scheduler.last_supervision

    def status(self) -> Dict[str, object]:
        """Store inventory plus this client's sweep counters."""
        status = dict(self.session.status())
        status.update(
            submitted=self.scheduler.submitted.value,
            store_hits=self.scheduler.store_hits.value,
            deduped=self.scheduler.deduped.value,
            simulated=self.scheduler.simulated.value,
            failed=self.scheduler.failed.value,
        )
        return status
