"""Deterministic fault injection: configuration, schedule, accounting.

The paper argues MMC-level translation is safe to put on the critical
path because the OS can always *detect and repair* inconsistencies
(parity on MTLB entries, flush-on-remap, per-base-page dirty bits).  To
test those recovery paths the simulator can inject faults at four named
sites:

* ``mtlb_parity`` — a cached MTLB way is corrupted; the parity check
  trips on the next access and the kernel flush-and-refills;
* ``shadow_bitflip`` — a bit flips in the in-DRAM shadow-table entry the
  fill engine is reading; detected by parity at fill time and repaired
  by the kernel's scrub from its own superpage records;
* ``dirty_drop`` — the MTLB's write-back of a first-time
  referenced/dirty bit to the in-DRAM table is dropped; the cached way
  forgets it wrote the bit, so the next access retries (the recovery is
  the retry);
* ``dram_transient`` — a transient bus/DRAM error on a memory access;
  the MMC retries with bounded exponential backoff.

Injection is **deterministic**: each site owns a private PRNG seeded
from ``(config.seed, site)`` and a monotonically increasing reference
counter, so the same :class:`FaultConfig` produces the same fault
schedule regardless of how sites interleave.  A fault fires either
probabilistically (``rate``) or exactly at the site's N-th consultation
(``triggers``), which is what directed tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .schedule import SiteSchedule

#: The named injection sites, in documentation order.
MTLB_PARITY = "mtlb_parity"
SHADOW_BITFLIP = "shadow_bitflip"
DIRTY_DROP = "dirty_drop"
DRAM_TRANSIENT = "dram_transient"

FAULT_SITES: Tuple[str, ...] = (
    MTLB_PARITY,
    SHADOW_BITFLIP,
    DIRTY_DROP,
    DRAM_TRANSIENT,
)


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection knobs; the all-zero default is a strict no-op.

    ``triggers`` pins faults to exact consultation counts — a pair
    ``(site, n)`` fires the site's fault on its *n*-th consultation
    (1-based), independent of the probabilistic rates.  Rates are
    per-consultation probabilities in ``[0, 1]``.
    """

    seed: int = 1998
    mtlb_parity_rate: float = 0.0
    shadow_bitflip_rate: float = 0.0
    dirty_drop_rate: float = 0.0
    dram_transient_rate: float = 0.0
    #: Exact-fire points: ((site, consultation_number), ...), 1-based.
    triggers: Tuple[Tuple[str, int], ...] = ()
    #: MMC retry bound for transient memory errors; past this the access
    #: raises :class:`~repro.errors.UnrecoverableMemoryError`.
    max_retries: int = 4
    #: First-retry backoff in MMC cycles; doubles per further retry.
    retry_backoff_cycles: int = 4

    def __post_init__(self) -> None:
        for site in FAULT_SITES:
            rate = getattr(self, f"{site}_rate")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{site}_rate must be in [0, 1], got {rate}"
                )
        for site, count in self.triggers:
            if site not in FAULT_SITES:
                raise ValueError(f"unknown fault site {site!r}")
            if count < 1:
                raise ValueError(
                    f"trigger counts are 1-based, got {count} for {site}"
                )
        if self.max_retries < 1:
            raise ValueError("max_retries must be at least 1")
        if self.retry_backoff_cycles < 0:
            raise ValueError("retry_backoff_cycles must be non-negative")

    def rate_of(self, site: str) -> float:
        """Return the probabilistic rate configured for *site*."""
        return getattr(self, f"{site}_rate")

    @property
    def enabled(self) -> bool:
        """True if any fault can ever fire (rates or triggers set)."""
        return bool(self.triggers) or any(
            self.rate_of(site) > 0.0 for site in FAULT_SITES
        )


@dataclass
class FaultStats:
    """Injection/recovery accounting, per site and in total."""

    injected: Dict[str, int] = field(
        default_factory=lambda: {site: 0 for site in FAULT_SITES}
    )
    recovered: Dict[str, int] = field(
        default_factory=lambda: {site: 0 for site in FAULT_SITES}
    )

    @property
    def total_injected(self) -> int:
        """Total faults injected across all sites."""
        return sum(self.injected.values())

    @property
    def total_recovered(self) -> int:
        """Total faults the system recovered from, across all sites."""
        return sum(self.recovered.values())


class FaultPlan:
    """The seeded, per-site fault schedule for one simulated run.

    Hardware components consult :meth:`fires` at their injection sites;
    recovery code reports success through :meth:`record_recovery`.  The
    fired-fault schedule (``(site, consultation_number)`` pairs) is kept
    so tests can assert determinism: same config ⇒ same schedule.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        #: The seeded consultation machinery, shared verbatim with the
        #: service-layer chaos plan (:mod:`repro.faults.schedule`).
        self._sched = SiteSchedule(
            config.seed,
            FAULT_SITES,
            {site: config.rate_of(site) for site in FAULT_SITES},
            config.triggers,
        )
        # Back-compat aliases: tests and debuggers reach for these.
        self._rngs = self._sched.rngs
        self._counts = self._sched.counts
        self._triggers = self._sched.triggers
        self.stats = FaultStats()
        #: Every fired fault as (site, consultation_number), in order.
        self.schedule: List[Tuple[str, int]] = self._sched.schedule

    def fires(self, site: str) -> bool:
        """Consult the plan at *site*; True means inject a fault now.

        Every consultation advances the site's counter and (when the
        site has a nonzero rate) its PRNG, so the decision sequence is a
        pure function of the config — independent of the other sites.
        """
        fired = self._sched.fires(site)
        if fired:
            self.stats.injected[site] += 1
        return fired

    def choose_bit(self, site: str, width: int = 28) -> int:
        """Pick which bit a fired corruption flips (deterministic)."""
        return self._sched.rng(site).randrange(width)

    def record_recovery(self, site: str) -> None:
        """Count one successful recovery at *site*."""
        self.stats.recovered[site] += 1

    def consultations(self, site: str) -> int:
        """How many times *site* has been consulted so far."""
        return self._sched.consultations(site)

    def next_trigger_distance(self) -> "int | None":
        """Consultations until the nearest pending exact trigger.

        Passthrough to :meth:`SiteSchedule.next_trigger_distance`; the
        vector engine clamps its fast-forward window with this so a
        scheduled fault lands inside a scalar-stepped stretch, never
        mid-bulk-retire (DESIGN.md §10).
        """
        return self._sched.next_trigger_distance()
