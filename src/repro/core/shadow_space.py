"""Allocation of shadow physical address ranges (paper Section 2.4).

The shadow window is large relative to the superpages the OS creates, so the
paper uses a deliberately simple scheme: the window is statically carved into
*buckets* of each legal superpage size (Figure 2), and superpage creation
takes any free region from the right bucket.  The paper also suggests that a
buddy-system allocator that splits and recombines regions "should also be
used" if regions become sparse; we implement that as an alternative
allocator so the two can be compared (ablation A2 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .addrspace import (
    PhysicalMemoryMap,
    SUPERPAGE_SIZES,
    is_aligned,
    is_superpage_size,
)


class ShadowSpaceExhausted(Exception):
    """Raised when no shadow region of the requested size is available."""


@dataclass(frozen=True)
class ShadowRegion:
    """A contiguous, size-aligned region of shadow physical addresses."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if not is_superpage_size(self.size):
            raise ValueError(f"{self.size:#x} is not a legal superpage size")
        if not is_aligned(self.base, self.size):
            raise ValueError(
                f"shadow region base {self.base:#010x} is not aligned "
                f"to its size {self.size:#x}"
            )

    @property
    def end(self) -> int:
        """One past the last address of the region."""
        return self.base + self.size

    def overlaps(self, other: "ShadowRegion") -> bool:
        """Return True if this region shares any address with *other*."""
        return self.base < other.end and other.base < self.end


#: The static partition of a 512 MB shadow window used in the paper's
#: Figure 2: (superpage size, count) pairs, smallest first.
FIGURE2_PARTITION: Tuple[Tuple[int, int], ...] = (
    (16 << 10, 1024),
    (64 << 10, 256),
    (256 << 10, 128),
    (1024 << 10, 64),
    (4096 << 10, 32),
    (16384 << 10, 16),
)


def partition_extent(partition: Iterable[Tuple[int, int]]) -> int:
    """Return the total address-space extent of a (size, count) partition."""
    return sum(size * count for size, count in partition)


class BucketShadowAllocator:
    """The paper's bucket allocator for shadow superpage regions.

    The shadow window is pre-partitioned into fixed pools of each legal
    superpage size.  ``allocate`` pops any free region from the requested
    size's pool; ``free`` returns it.  Running a pool dry raises
    :class:`ShadowSpaceExhausted` — exactly the limitation Section 2.4
    acknowledges ("it is possible to run out of a particular sized region").
    """

    def __init__(
        self,
        memory_map: PhysicalMemoryMap,
        partition: Iterable[Tuple[int, int]] = FIGURE2_PARTITION,
    ) -> None:
        self.memory_map = memory_map
        self.partition: Tuple[Tuple[int, int], ...] = tuple(partition)
        extent = partition_extent(self.partition)
        if extent > memory_map.shadow_size:
            raise ValueError(
                f"partition extent {extent:#x} exceeds shadow window "
                f"size {memory_map.shadow_size:#x}"
            )
        self._free: Dict[int, List[int]] = {}
        self._allocated: Dict[int, int] = {}
        self._carve()

    def _carve(self) -> None:
        """Carve the shadow window into the configured buckets.

        Regions are laid out largest-size-first so that every region is
        naturally aligned to its own size without padding (the window base
        is aligned to the largest superpage).
        """
        cursor = self.memory_map.shadow_base
        for size, count in sorted(self.partition, reverse=True):
            pool = self._free.setdefault(size, [])
            for _ in range(count):
                pool.append(cursor)
                cursor += size
        self._carve_end = cursor

    def available(self, size: int) -> int:
        """Return how many free regions of *size* remain."""
        return len(self._free.get(size, ()))

    def capacity(self, size: int) -> int:
        """Return how many regions of *size* the partition holds in total."""
        for psize, count in self.partition:
            if psize == size:
                return count
        return 0

    def allocate(self, size: int) -> ShadowRegion:
        """Allocate a free shadow region of exactly *size* bytes.

        Raises :class:`ShadowSpaceExhausted` if the pool for *size* is
        empty (there is no splitting or coalescing in the bucket scheme).
        """
        if not is_superpage_size(size):
            raise ValueError(f"{size:#x} is not a legal superpage size")
        pool = self._free.get(size)
        if not pool:
            raise ShadowSpaceExhausted(
                f"no free shadow regions of size {size:#x}"
            )
        base = pool.pop()
        self._allocated[base] = size
        return ShadowRegion(base, size)

    def allocate_colored(
        self, size: int, color: int, colors: int
    ) -> Tuple[ShadowRegion, int]:
        """Allocate a region containing a base page of cache *color*.

        Returns ``(region, page_index)`` where ``page_index`` is the
        base page within the region whose physical cache color is
        *color*.  Used by the no-copy page-recoloring extension: the OS
        picks the shadow name of a page to choose its cache placement.
        """
        if not is_superpage_size(size):
            raise ValueError(f"{size:#x} is not a legal superpage size")
        if not 0 <= color < colors:
            raise ValueError(f"color {color} out of range 0..{colors - 1}")
        pool = self._free.get(size, [])
        pages = size >> 12
        for i, base in enumerate(pool):
            base_color = (base >> 12) % colors
            for k in range(pages):
                if (base_color + k) % colors == color:
                    pool.pop(i)
                    self._allocated[base] = size
                    return ShadowRegion(base, size), k
        raise ShadowSpaceExhausted(
            f"no free shadow region of size {size:#x} covers color {color}"
        )

    def free(self, region: ShadowRegion) -> None:
        """Return *region* to its pool."""
        size = self._allocated.pop(region.base, None)
        if size is None:
            raise ValueError(
                f"shadow region {region.base:#010x} is not allocated"
            )
        if size != region.size:
            raise ValueError(
                f"shadow region {region.base:#010x} was allocated with "
                f"size {size:#x}, freed with {region.size:#x}"
            )
        self._free[size].append(region.base)

    @property
    def allocated_regions(self) -> int:
        """Number of currently allocated regions."""
        return len(self._allocated)

    def describe(self) -> List[Tuple[int, int, int]]:
        """Return (size, count, extent) rows reproducing Figure 2."""
        return [
            (size, count, size * count) for size, count in self.partition
        ]


class BuddyShadowAllocator:
    """Buddy-system allocator over the shadow window (paper future work).

    Splits and recombines power-of-four regions.  Because legal superpage
    sizes step by a factor of four, splitting one region yields four
    buddies of the next size down.  A 16 KB region never splits further
    (16 KB is the smallest superpage).
    """

    _SIZES = tuple(sorted(SUPERPAGE_SIZES, reverse=True))

    def __init__(self, memory_map: PhysicalMemoryMap) -> None:
        self.memory_map = memory_map
        self._free: Dict[int, set] = {size: set() for size in SUPERPAGE_SIZES}
        self._allocated: Dict[int, int] = {}
        largest = self._SIZES[0]
        cursor = memory_map.shadow_base
        end = memory_map.shadow_base + memory_map.shadow_size
        while cursor + largest <= end:
            self._free[largest].add(cursor)
            cursor += largest

    def available(self, size: int) -> int:
        """Return how many free regions of exactly *size* exist right now."""
        return len(self._free.get(size, ()))

    def allocate(self, size: int) -> ShadowRegion:
        """Allocate a region of *size*, splitting larger regions as needed."""
        if not is_superpage_size(size):
            raise ValueError(f"{size:#x} is not a legal superpage size")
        base = self._take(size)
        if base is None:
            raise ShadowSpaceExhausted(
                f"no free shadow regions of size {size:#x} and none to split"
            )
        self._allocated[base] = size
        return ShadowRegion(base, size)

    def _take(self, size: int) -> Optional[int]:
        pool = self._free[size]
        if pool:
            return pool.pop()
        # Split the next size up (factor of four).
        bigger = size * 4
        if bigger not in self._free:
            return None
        parent = self._take(bigger)
        if parent is None:
            return None
        # Keep the first quarter; free the other three buddies.
        for k in range(1, 4):
            self._free[size].add(parent + k * size)
        return parent

    def free(self, region: ShadowRegion) -> None:
        """Free *region*, recombining complete buddy quads upward."""
        size = self._allocated.pop(region.base, None)
        if size is None:
            raise ValueError(
                f"shadow region {region.base:#010x} is not allocated"
            )
        if size != region.size:
            raise ValueError(
                f"shadow region {region.base:#010x} was allocated with "
                f"size {size:#x}, freed with {region.size:#x}"
            )
        self._release(region.base, size)

    def _release(self, base: int, size: int) -> None:
        bigger = size * 4
        if bigger in self._free:
            quad_base = base - (base - self.memory_map.shadow_base) % bigger
            buddies = [quad_base + k * size for k in range(4)]
            pool = self._free[size]
            others = [b for b in buddies if b != base]
            if all(b in pool for b in others):
                for b in others:
                    pool.remove(b)
                self._release(quad_base, bigger)
                return
        self._free[size].add(base)

    @property
    def allocated_regions(self) -> int:
        """Number of currently allocated regions."""
        return len(self._allocated)
