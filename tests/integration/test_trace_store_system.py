"""System-level tests for the columnar trace store (DESIGN.md §15).

The store is a cache: its entire contract is that results through it
are **bit-identical** to results without it, while the operational
wins (shared mmap pages, single-flight generation, streaming starts)
happen underneath.  These tests pin:

* cold-sweep equivalence — store-backed and legacy-backed runs
  produce identical ``RunStats``;
* the thundering-herd fix — N processes racing one cold identity
  generate it exactly once;
* streaming — a :class:`StreamedTrace` simulates identically to the
  built trace and commits the entry as a side effect;
* worker counter surfacing — trace-store traffic from pool workers is
  merged into the parent's operational registry (the bug where
  corruption warnings died inside workers, invisible to operators).
"""

import dataclasses
import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import ScenarioSpec
from repro.bench.runner import BenchContext
from repro.serve.scheduler import SweepScheduler
from repro.sim.config import paper_mtlb
from repro.sim.system import System
from repro.trace.store import TraceStore, store_registry, trace_address
from repro.workloads import build_workload, stream_workload

SCALES = {"em3d": 0.02, "radix": 0.02}


def ctx_for(tmp_path, trace_store, **kw):
    return BenchContext(
        quick=True, scales=dict(SCALES), cache_dir=tmp_path,
        trace_store=trace_store, **kw,
    )


class TestColdSweepEquivalence:
    def test_store_vs_legacy_bit_identical(self, tmp_path):
        config = paper_mtlb(96)
        for workload in SCALES:
            legacy = ctx_for(tmp_path / "legacy", False).run(
                workload, config
            )
            store = ctx_for(tmp_path / "store", True).run(
                workload, config
            )
            assert dataclasses.asdict(store.stats) == (
                dataclasses.asdict(legacy.stats)
            ), workload

    def test_warm_reload_bit_identical(self, tmp_path):
        config = paper_mtlb(96)
        cold = ctx_for(tmp_path, True).run("em3d", config)
        warm = ctx_for(tmp_path, True).run("em3d", config)
        assert dataclasses.asdict(warm.stats) == (
            dataclasses.asdict(cold.stats)
        )

    def test_streamed_cold_run_bit_identical(self, tmp_path):
        config = paper_mtlb(96)
        eager = ctx_for(tmp_path / "eager", True).run("em3d", config)
        streamed = ctx_for(
            tmp_path / "streamed", True, stream_cold=True
        ).run("em3d", config)
        assert dataclasses.asdict(streamed.stats) == (
            dataclasses.asdict(eager.stats)
        )


class TestStreamedSimulation:
    def test_streamed_trace_equals_built_and_commits(self, tmp_path):
        store = TraceStore(tmp_path / "store")
        workload, scale, seed = "em3d", 0.02, 1998
        streamed = store.stream_or_load(
            workload, scale, seed,
            lambda: stream_workload(workload, scale=scale, seed=seed),
        )
        result = System(paper_mtlb(96)).run(streamed)
        built = build_workload(workload, scale=scale, seed=seed)
        reference = System(paper_mtlb(96)).run(built)
        assert dataclasses.asdict(result.stats) == (
            dataclasses.asdict(reference.stats)
        )
        # Consuming the stream committed the entry as a side effect.
        addr = trace_address(workload, scale, seed)
        assert store.has(addr)
        committed = store.load(addr)
        assert committed.total_refs == built.total_refs


def _herd_worker(root, log_path, barrier):
    """One stampeding process: get_or_create a shared cold identity."""
    import numpy as np

    from repro.trace.store import TraceStore
    from repro.trace.trace import Trace, make_segment

    store = TraceStore(Path(root))

    def produce(writer):
        with open(log_path, "a") as fh:
            fh.write("generated\n")
        vaddrs = 0x1000 + np.arange(5000, dtype=np.int64) * 64
        writer.begin("herd", 0x100_0000, 64 << 10)
        writer.add(make_segment("body", vaddrs, gap=2))

    barrier.wait()
    trace = store.get_or_create("herd", 1.0, 0, produce)
    assert trace.total_refs == 5000


class TestSingleFlightHerd:
    def test_cold_herd_generates_exactly_once(self, tmp_path):
        """Regression for the thundering herd: before PR 9 every
        worker regenerated a cold trace; now one generates and the
        rest wait on the single-flight lock and load the commit."""
        log_path = tmp_path / "generations.log"
        log_path.touch()
        mp = multiprocessing.get_context("spawn")
        barrier = mp.Barrier(4)
        procs = [
            mp.Process(
                target=_herd_worker,
                args=(str(tmp_path / "store"), str(log_path), barrier),
            )
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        generations = log_path.read_text().count("generated")
        assert generations == 1


class TestWorkerCounterSurfacing:
    def test_pool_workers_merge_trace_ops_into_parent(self, tmp_path):
        """Trace-store traffic happens inside pool workers; the
        supervised reaper folds each worker's counter delta into the
        parent's operational registry so `repro metrics dump` (and the
        scheduler registry's `trace.*` source) can see it."""
        before = store_registry().collect()
        context = ctx_for(tmp_path, True, jobs=2)
        specs = [
            ScenarioSpec(workload=w, config=paper_mtlb(96), seed=1998)
            for w in SCALES
        ]
        scheduler = SweepScheduler(context=context, jobs=2)
        reports = scheduler.sweep(specs)
        assert len(reports) == len(SCALES)
        after = store_registry().collect()

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        # Cold sweep: every workload was generated in some worker.
        assert delta("trace.store.generated") >= len(SCALES)
        assert delta("trace.store.misses") >= len(SCALES)
        # The scheduler registry exposes the same traffic as a source.
        sched_counters = scheduler.registry.collect()
        assert sched_counters.get("trace.store.generated", 0) >= len(
            SCALES
        )

    def test_prewarm_skipped_in_store_mode(self, tmp_path):
        """The parent must not serially pre-generate traces when the
        store is on — workers single-flight their own.  Observable as:
        after a pool sweep the parent process itself never built a
        trace (its own `generated` counter stays zero in a fresh
        interpreter)."""
        script = r"""
import json, sys
from pathlib import Path
from repro.api import ScenarioSpec
from repro.bench.runner import BenchContext
from repro.serve.scheduler import SweepScheduler
from repro.sim.config import paper_mtlb
from repro.trace.store import store_registry

cache = Path(sys.argv[1])
context = BenchContext(
    quick=True, scales={"em3d": 0.02}, cache_dir=cache,
    trace_store=True, jobs=2,
)
scheduler = SweepScheduler(context=context, jobs=2)
scheduler.sweep(
    [ScenarioSpec(workload="em3d", config=paper_mtlb(96), seed=1998)]
)
print(json.dumps(store_registry().collect()))
"""
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(
                Path(__file__).resolve().parents[2] / "src"
            )},
        )
        assert proc.returncode == 0, proc.stderr[-800:]
        counters = json.loads(proc.stdout.strip().splitlines()[-1])
        # All generation happened in workers; the merged-in deltas are
        # the only source of these counts, proving the parent skipped
        # its serial prewarm loop (which would also have counted).
        assert counters.get("trace.store.generated", 0) == 1
        # Exactly one generation total: no herd between the 2 workers.
        assert counters.get("trace.store.misses", 0) == 1


class TestWorkerCorruptionVisibility:
    def test_corrupt_store_entry_surfaces_in_parent_registry(
        self, tmp_path
    ):
        """Satellite (d): a worker that trips on a corrupt cache entry
        must leave an operator-visible trail.  Corrupt one entry, run
        a pool sweep over it, and expect quarantine + regeneration
        counts merged into the parent registry — not a warning
        swallowed by a child process."""
        context = ctx_for(tmp_path, True, jobs=2)
        # Warm the entry, then rot its chunk payload.
        context.trace_at("em3d", 0.02)
        store = TraceStore(tmp_path / "store")
        addr = trace_address("em3d", 0.02, context.seed)
        entry = store.entry_dir(addr)
        (entry / "cols.raw").unlink()
        blob = bytearray((entry / "chunks.bin").read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        (entry / "chunks.bin").write_bytes(bytes(blob))

        before = store_registry().collect()
        scheduler = SweepScheduler(context=context, jobs=2)
        reports = scheduler.sweep(
            [ScenarioSpec(workload="em3d", config=paper_mtlb(96),
                          seed=context.seed)]
        )
        assert len(reports) == 1
        after = store_registry().collect()

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("trace.cache_corrupt") >= 1
        assert delta("trace.store.quarantined") >= 1
        assert delta("trace.store.generated") >= 1
        # The sweep still succeeded: regeneration was transparent.
        assert reports[0].stats.references > 0
