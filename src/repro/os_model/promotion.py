"""Online superpage promotion (paper Section 5 / Romer et al.).

The paper's experiments create superpages *statically* — the programmer
(or a modified ``sbrk``) says which regions to remap.  Section 5 notes
that an online policy in the style of Romer et al., which *promotes*
regions once their observed TLB-miss cost exceeds the promotion cost,
"would be useful in the kernel of a machine exploiting shadow memory,
although the specific parameters would need to be tweaked to reflect the
reduced cost of exploiting superpages in our design" (no page copying —
remap is a cache flush plus mapping writes).

This module implements that policy.  The kernel registers every mapped
region as a candidate; the software TLB miss handler reports each miss
that lands in a candidate; when a region's accumulated misses cross the
threshold, the engine remaps it onto shadow superpages on the spot, at
its real simulated cost.

The threshold is expressed in *misses per remapped page*, which is the
natural break-even unit: one software refill costs roughly 50-100
cycles, while remapping costs ~1400 cycles per page (the measured flush
cost) — so thresholds of a handful of misses per page already pay for
themselves on any region that keeps missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.addrspace import BASE_PAGE_SHIFT, SUPERPAGE_SIZES
from ..core.shadow_space import ShadowSpaceExhausted
from ..obs.tracer import PROMOTION
from .process import Process


@dataclass(frozen=True)
class PromotionConfig:
    """Online-promotion policy parameters."""

    enabled: bool = False
    #: Promote a region once it has accumulated this many TLB misses
    #: *per 4 KB page of the region* (fractional accumulation: a big
    #: region needs proportionally more misses).
    misses_per_page: float = 3.0
    #: Regions smaller than this are never promoted (can't hold even the
    #: smallest superpage after alignment, or not worth the bookkeeping).
    min_region_bytes: int = SUPERPAGE_SIZES[0]


@dataclass
class PromotionStats:
    """Activity counters for the promotion engine."""

    candidates: int = 0
    misses_observed: int = 0
    promotions: int = 0
    promoted_pages: int = 0
    promotion_cycles: int = 0
    exhaustion_failures: int = 0

    def metrics_snapshot(self) -> Dict[str, int]:
        """Flat counter mapping for the machine's metrics registry."""
        return {
            "candidates": self.candidates,
            "misses_observed": self.misses_observed,
            "promotions": self.promotions,
            "promoted_pages": self.promoted_pages,
            "promotion_cycles": self.promotion_cycles,
            "exhaustion_failures": self.exhaustion_failures,
        }


@dataclass
class _Candidate:
    """One registered region and its miss accounting."""

    process: Process
    vaddr: int
    length: int
    misses: int = 0
    dead: bool = False

    @property
    def pages(self) -> int:
        return self.length >> BASE_PAGE_SHIFT


class PromotionEngine:
    """Miss-driven promotion of base-page regions to shadow superpages."""

    def __init__(self, kernel, config: PromotionConfig) -> None:
        self.kernel = kernel
        self.config = config
        self.stats = PromotionStats()
        self._candidates: List[_Candidate] = []
        #: (pid, vpn) -> candidate covering that page.
        self._by_vpn: Dict[Tuple[int, int], _Candidate] = {}

    # ------------------------------------------------------------------ #
    # Registration (at map time)
    # ------------------------------------------------------------------ #

    def register_region(
        self, process: Process, vaddr: int, length: int
    ) -> None:
        """Track a freshly mapped region as a promotion candidate."""
        if not self.config.enabled:
            return
        if length < self.config.min_region_bytes:
            return
        candidate = _Candidate(process=process, vaddr=vaddr, length=length)
        self._candidates.append(candidate)
        first_vpn = vaddr >> BASE_PAGE_SHIFT
        for vpn in range(first_vpn, first_vpn + candidate.pages):
            self._by_vpn[(process.pid, vpn)] = candidate
        self.stats.candidates += 1

    def forget_region(self, vaddr: int, length: int) -> None:
        """Stop tracking (unmap or manual remap made it moot).

        Applies to the kernel's *current* process.
        """
        current = self.kernel.current
        pid = current.pid if current is not None else 0
        first_vpn = vaddr >> BASE_PAGE_SHIFT
        for vpn in range(first_vpn, first_vpn + (length >> BASE_PAGE_SHIFT)):
            candidate = self._by_vpn.pop((pid, vpn), None)
            if candidate is not None:
                candidate.dead = True

    # ------------------------------------------------------------------ #
    # The hot hook (called from the TLB miss handler path)
    # ------------------------------------------------------------------ #

    def note_miss(self, vaddr: int) -> int:
        """Record one TLB miss; returns promotion cycles if it fired.

        The returned cycles are kernel time the caller must charge (the
        remap happened inside the miss trap, as a real kernel would).
        The miss is attributed to the kernel's current process.
        """
        current = self.kernel.current
        pid = current.pid if current is not None else 0
        candidate = self._by_vpn.get((pid, vaddr >> BASE_PAGE_SHIFT))
        if candidate is None or candidate.dead:
            return 0
        self.stats.misses_observed += 1
        candidate.misses += 1
        threshold = self.config.misses_per_page * candidate.pages
        if candidate.misses < threshold:
            return 0
        return self._promote(candidate)

    def _promote(self, candidate: _Candidate) -> int:
        candidate.dead = True
        pid = candidate.process.pid
        first_vpn = candidate.vaddr >> BASE_PAGE_SHIFT
        for vpn in range(first_vpn, first_vpn + candidate.pages):
            self._by_vpn.pop((pid, vpn), None)
        try:
            report = self.kernel.vm.remap_to_shadow(
                candidate.process, candidate.vaddr, candidate.length
            )
        except ShadowSpaceExhausted:
            # degradation_policy="abort": the remap refuses outright.
            self.stats.exhaustion_failures += 1
            return 0
        if report.superpages_created == 0:
            # degradation_policy="demote": graceful degradation left the
            # whole region on base pages — promotion achieved nothing.
            self.stats.exhaustion_failures += 1
            return report.total_cycles
        self.stats.promotions += 1
        self.stats.promoted_pages += report.pages_remapped
        self.stats.promotion_cycles += report.total_cycles
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.emit(
                PROMOTION, report.pages_remapped, report.total_cycles
            )
        return report.total_cycles

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def live_candidates(self) -> int:
        """Number of regions still waiting to cross the threshold."""
        return sum(1 for c in self._candidates if not c.dead)
