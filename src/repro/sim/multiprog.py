"""Multiprogrammed simulation: several processes time-slicing one machine.

The paper's kernel supports process control and scheduling; its
measurements are single-program, but the mechanism's behaviour under
time-slicing is where superpages shine twice over:

* the (untagged) CPU TLB is flushed on every context switch, so each
  quantum starts by re-faulting the working set in — hundreds of
  base-page refills, or a handful of superpage refills;
* the MTLB and the cache are physically indexed state that *survives*
  switches, so the shadow path's warm state persists across quanta.

This driver runs N workload traces round-robin on one
:class:`~repro.sim.system.System`, splitting trace segments into
quantum-sized slices and charging a context-switch cost (kernel state
save/restore plus the TLB flush) at every rotation.  The hashed page
table is shared across processes via PA-RISC-style space identifiers, so
overlapping virtual layouts coexist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.addrspace import BASE_PAGE_SHIFT
from ..trace.trace import Segment, Trace
from .config import SystemConfig
from .engine import EngineState
from .results import RunResult
from .system import System

#: Fixed kernel cost of one context switch (state save/restore,
#: scheduler), excluding the TLB refill costs it induces.
DEFAULT_SWITCH_COST = 3_000
#: References per scheduling quantum (~a few hundred thousand cycles,
#: i.e. of the order of a short 1990s timeslice).
DEFAULT_QUANTUM_REFS = 100_000


def split_segment(segment: Segment, quantum_refs: int) -> List[Segment]:
    """Split one segment into quantum-sized slices (views, not copies)."""
    if quantum_refs <= 0:
        raise ValueError("quantum_refs must be positive")
    if segment.refs <= quantum_refs:
        return [segment]
    slices = []
    for start in range(0, segment.refs, quantum_refs):
        end = min(start + quantum_refs, segment.refs)
        slices.append(
            Segment(
                f"{segment.label}[{start}:{end}]",
                segment.ops[start:end],
                segment.vaddrs[start:end],
                segment.gaps[start:end],
                text_pages=segment.text_pages,
            )
        )
    return slices


@dataclass
class MultiRunResult:
    """Outcome of one multiprogrammed run.

    ``per_process_cycles`` attributes every cycle a process caused
    (creation, its quanta, its exit); ``shared_cycles`` holds the rest —
    boot, context-switch costs, and the end-of-run timer accounting.
    The split is exact:
    ``sum(per_process_cycles.values()) + shared_cycles == total_cycles``.
    """

    result: RunResult
    context_switches: int
    per_process_cycles: Dict[str, int]
    shared_cycles: int = 0
    #: Engine the run resolved to ("scalar"/"vector"), re-resolved
    #: through System.begin_run() so job mixes follow the same policy
    #: as single-program runs (vector for every expressible config
    #: since the PR-8 lift, with per-process predictor state).
    engine: str = ""

    @property
    def total_cycles(self) -> int:
        """Total machine cycles across all processes."""
        return self.result.total_cycles


class MultiProgram:
    """Round-robin execution of several traces on one machine."""

    def __init__(
        self,
        config: SystemConfig,
        traces: List[Trace],
        quantum_refs: int = DEFAULT_QUANTUM_REFS,
        switch_cost: int = DEFAULT_SWITCH_COST,
    ) -> None:
        if not traces:
            raise ValueError("need at least one trace")
        names = [t.name for t in traces]
        if len(set(names)) != len(names):
            raise ValueError("trace names must be unique per run")
        self.config = config
        self.traces = traces
        self.quantum_refs = quantum_refs
        self.switch_cost = switch_cost

    def run(self) -> MultiRunResult:
        """Simulate the job mix from boot through the last exit."""
        system = System(self.config)
        system.begin_run()  # shared entry point: re-resolves the engine
        stats = system.stats
        kernel = system.kernel
        per_process_cycles: Dict[str, int] = {
            t.name: 0 for t in self.traces
        }
        # Boot is nobody's fault; switch and timer costs join it below.
        shared_cycles = kernel.costs.boot
        stats.kernel_cycles += kernel.costs.boot

        # Create every process, map its text, queue its (sliced) items.
        # Creation cost (fork_exec + text map) is that process's.
        queues: List[List] = []
        processes = []
        for trace in self.traces:
            cycles_before = self._machine_cycles(stats)
            stats.kernel_cycles += kernel.costs.fork_exec
            process = kernel.create_process(trace.name)
            stats.kernel_cycles += kernel.sys_map(
                process, trace.text_base, trace.text_size
            )
            per_process_cycles[trace.name] += (
                self._machine_cycles(stats) - cycles_before
            )
            items: List = []
            for item in trace.items:
                if isinstance(item, Segment):
                    items.extend(split_segment(item, self.quantum_refs))
                else:
                    items.append(item)
            queues.append(items)
            processes.append(process)

        switches = 0
        current = -1
        cursors = [0] * len(queues)
        live = set(range(len(queues)))
        # Per-process vector-engine predictor state: each quantum
        # resumes the fast-forward window geometry its own access
        # pattern taught the engine, instead of inheriting whatever the
        # previously scheduled process left behind.  Pure perf state —
        # window geometry never changes results.
        engine_states = [EngineState() for _ in queues]

        while live:
            progressed = False
            for i in sorted(live):
                if cursors[i] >= len(queues[i]):
                    stats.kernel_cycles += kernel.costs.exit
                    per_process_cycles[self.traces[i].name] += (
                        kernel.costs.exit
                    )
                    live.discard(i)
                    continue
                if current != i:
                    self._switch(system, processes[i], current >= 0)
                    system.engine_state = engine_states[i]
                    if current >= 0:
                        switches += 1
                        stats.kernel_cycles += self.switch_cost
                        shared_cycles += self.switch_cost
                    current = i
                # Run kernel events until (and including) one segment.
                cycles_before = self._machine_cycles(stats)
                while cursors[i] < len(queues[i]):
                    item = queues[i][cursors[i]]
                    cursors[i] += 1
                    if isinstance(item, Segment):
                        system._run_segment(item, processes[i])
                        break
                    system._exec_event(item, processes[i])
                per_process_cycles[self.traces[i].name] += (
                    self._machine_cycles(stats) - cycles_before
                )
                progressed = True
            if not progressed:
                break

        subtotal = self._machine_cycles(stats)
        timer = kernel.timer_cycles(subtotal)
        stats.kernel_cycles += timer
        shared_cycles += timer
        stats.total_cycles = self._machine_cycles(stats)
        system._harvest_component_stats()
        stats.check_consistency()
        label = f"{self.config.label}@q{self.quantum_refs}"
        result = RunResult(
            workload="+".join(t.name for t in self.traces),
            config_label=label,
            stats=stats,
            metrics=system.metrics.collect(),
            engine=system.engine,
        )
        return MultiRunResult(
            result=result,
            context_switches=switches,
            per_process_cycles=per_process_cycles,
            shared_cycles=shared_cycles,
            engine=system.engine,
        )

    def _switch(self, system: System, process, flush: bool) -> None:
        """Context switch: rebind the kernel, flush the untagged TLB."""
        system.kernel.switch_to(process)
        if flush:
            system.tlb.flush_all()
            system.micro_itlb.invalidate()
        # Instruction-side state follows the process.
        system._text_base = next(
            t.text_base for t in self.traces if t.name == process.name
        )
        system._text_page_count = max(
            1,
            next(
                t.text_size for t in self.traces if t.name == process.name
            )
            >> BASE_PAGE_SHIFT,
        )

    @staticmethod
    def _machine_cycles(stats) -> int:
        return (
            stats.instruction_cycles
            + stats.memory_stall_cycles
            + stats.tlb_miss_cycles
            + stats.kernel_cycles
        )


def run_job_mix(
    config: SystemConfig,
    traces: List[Trace],
    quantum_refs: int = DEFAULT_QUANTUM_REFS,
    switch_cost: int = DEFAULT_SWITCH_COST,
) -> MultiRunResult:
    """Convenience wrapper: build and run one multiprogrammed mix."""
    return MultiProgram(
        config, traces, quantum_refs=quantum_refs, switch_cost=switch_cost
    ).run()
