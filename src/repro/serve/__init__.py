"""repro.serve — the scenario service (DESIGN.md §12–14).

Seven layers, bottom-up:

* :mod:`~repro.serve.fingerprint` — canonical scenario fingerprints,
  the content address of one simulation outcome;
* :mod:`~repro.serve.store` — the content-addressed, CRC-checked
  :class:`ResultStore` of completed runs (corrupt entries quarantined,
  never served; writes fsync'd for crash durability; ``gc()`` prunes
  operational litter);
* :mod:`~repro.serve.supervise` — the supervised shard pool: deadlines
  with a hard-kill watchdog, retry-with-backoff, poison quarantine,
  circuit breaker, graceful SIGINT/SIGTERM draining — in batch mode
  (:meth:`ShardSupervisor.run`) or resident mode
  (:meth:`ShardSupervisor.serve`);
* :mod:`~repro.serve.chaos` — deterministic service-layer failure
  injection (seeded like :mod:`repro.faults`) and the ``repro chaos
  soak`` bit-identity harness;
* :mod:`~repro.serve.scheduler` / :mod:`~repro.serve.client` — the
  async :class:`SweepScheduler` (asyncio front, supervised workers,
  verified commits, obs-instrumented) and its :class:`SweepClient`
  front door (local pool or ``daemon=`` HTTP transport);
* :mod:`~repro.serve.queue` / :mod:`~repro.serve.http` /
  :mod:`~repro.serve.daemon` — the resident scenario daemon: a
  priority + weighted-fair tenant queue multiplexing many HTTP clients
  onto one warm pool, streaming NDJSON results and Prometheus metrics.

``repro serve sweep``, ``repro serve daemon``, ``repro serve status``,
``repro serve gc``, and ``repro chaos soak`` are the CLI over this
package; :meth:`repro.bench.runner.BenchContext.run_matrix` is its
oldest client.
"""

from .chaos import (
    CHAOS_SITES,
    ChaosConfig,
    ChaosPlan,
    SoakReport,
    default_chaos,
    run_soak,
)
from .client import SweepClient
from .daemon import ScenarioDaemon, daemon_policy
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_scenario,
    scenario_fingerprint,
)
from .queue import FairQueue, QueueClosed
from .scheduler import (
    SweepScheduler,
    SweepTicket,
    execute_spec,
    guarded_commit,
    resolve_scales,
    spec_fingerprint,
    spec_scale,
)
from .store import (
    STORE_SCHEMA,
    ResultStore,
    StoreRecord,
    atomic_write_bytes,
    default_store_root,
)
from .supervise import (
    EXIT_ABORTED,
    EXIT_INTERRUPTED,
    PoisonRecord,
    ShardSupervisor,
    ShutdownGuard,
    SupervisionPolicy,
    SupervisionReport,
    TaskIntake,
    load_poison_records,
)

__all__ = [
    "CHAOS_SITES",
    "ChaosConfig",
    "ChaosPlan",
    "EXIT_ABORTED",
    "EXIT_INTERRUPTED",
    "FINGERPRINT_VERSION",
    "FairQueue",
    "PoisonRecord",
    "QueueClosed",
    "STORE_SCHEMA",
    "ResultStore",
    "ScenarioDaemon",
    "ShardSupervisor",
    "ShutdownGuard",
    "SoakReport",
    "StoreRecord",
    "SupervisionPolicy",
    "SupervisionReport",
    "SweepClient",
    "SweepScheduler",
    "SweepTicket",
    "TaskIntake",
    "atomic_write_bytes",
    "canonical_scenario",
    "daemon_policy",
    "default_chaos",
    "default_store_root",
    "execute_spec",
    "guarded_commit",
    "load_poison_records",
    "resolve_scales",
    "run_soak",
    "scenario_fingerprint",
    "spec_fingerprint",
    "spec_scale",
]
