"""S2 — MTLB gain as a function of TLB-miss handling cost.

The paper's premise (after Chen et al.) is that TLB *reach* is the
bottleneck; still, what a miss costs scales the MTLB's payoff.  This
bench sweeps a hardware-walker-like cost, the paper's software trap, and
a heavyweight-OS trap.
"""

from repro.bench import run_handler_sensitivity


def test_handler_sensitivity(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_handler_sensitivity(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
