"""The VM subsystem: mapping, and remapping regions onto shadow superpages.

This is the OS half of the paper's mechanism (Sections 2.3-2.4).  The
hardware half (MTLB + shadow table) lives in :mod:`repro.core`; this module
performs the choreography a remap requires, charging simulated cycles for
every step:

1. plan maximal superpages over the virtual region;
2. allocate shadow regions from the bucket allocator;
3. **flush the region from the cache** (through the real cache model, so
   the ~1400 cycles/4 KB page cost of Section 3.3 is measured, not
   assumed) and shoot down stale CPU TLB and HPT entries;
4. program the MMC's shadow-to-physical mappings for every base page via
   uncached control-register writes;
5. replace the base-page PTEs with one superpage PTE per planned region.

The reverse path (``remap_back``) and a conventional contiguous-superpage
path (for ablation A1) are also provided.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.addrspace import (
    BASE_PAGE_SHIFT,
    BASE_PAGE_SIZE,
    SUPERPAGE_SIZES,
    PhysicalMemoryMap,
    align_up,
)
from ..core.remap import SuperpagePlan, plan_superpages
from ..core.shadow_space import ShadowRegion, ShadowSpaceExhausted
from .frames import FrameAllocator, frames_for_bytes
from .hpt import HashedPageTable
from .page_table import MappingError
from .process import Process


@dataclass(frozen=True)
class VmCosts:
    """Fixed instruction costs of VM operations, in CPU cycles.

    Calibrated so the measured remap cost matches the paper's Section 3.3
    breakdown (~1400 cycles/page of flushing; ~145 cycles/page of other
    overhead for em3d's 1120-page remap).
    """

    #: Syscall entry/exit and argument validation.
    syscall_overhead: int = 300
    #: Zero-fill + bookkeeping per base page on first mapping.
    map_page: int = 400
    #: Per-superpage planning/allocation overhead during remap.
    remap_superpage: int = 700
    #: Per-base-page bookkeeping during remap (PTE rewrite, shootdown,
    #: HPT purge), excluding the uncached MMC mapping write.
    remap_page: int = 120
    #: Per-base-page bookkeeping when tearing a superpage down.
    unmap_page: int = 120


@dataclass
class ShadowSuperpage:
    """Bookkeeping record for one live shadow-backed superpage."""

    process: Process
    vbase: int
    region: ShadowRegion
    #: Real frame numbers backing each base page, in virtual order; an
    #: entry is None while that base page is swapped out.
    pfns: List[Optional[int]] = field(default_factory=list)

    @property
    def base_pages(self) -> int:
        """Number of base pages in the superpage."""
        return self.region.size >> BASE_PAGE_SHIFT

    @property
    def first_shadow_index(self) -> int:
        """Shadow page index of the superpage's first base page."""
        return self._first_index

    def set_first_index(self, index: int) -> None:
        """Record the shadow page index of the region's first page."""
        self._first_index = index


@dataclass
class RemapReport:
    """Cost and effect breakdown of one remap operation."""

    pages_remapped: int = 0
    superpages_created: int = 0
    flush_cycles: int = 0
    other_cycles: int = 0
    dirty_lines_written: int = 0
    #: Planned superpages that could not get shadow space and were
    #: demoted to smaller shadow superpages or left on base pages.
    degraded_superpages: int = 0
    #: Base pages left on conventional mappings because even the
    #: smallest shadow superpage could not be allocated.
    fallback_pages: int = 0

    @property
    def total_cycles(self) -> int:
        """Total simulated cost of the remap."""
        return self.flush_cycles + self.other_cycles


class VmSubsystem:
    """Mapping and shadow-superpage management for all processes.

    *machine* is the simulated machine port (in practice
    :class:`repro.sim.system.System`), providing the costed primitives:
    ``flush_virtual_range(process, vstart, length) -> (cycles, dirty)``,
    ``shootdown_range(vstart, length)``, ``uncached_mmc_write() -> cycles``
    and the ``mmc`` attribute.  It is attached after construction to break
    the build-order cycle.
    """

    def __init__(
        self,
        memory_map: PhysicalMemoryMap,
        frames: FrameAllocator,
        shadow_allocator,
        hpt: HashedPageTable,
        costs: VmCosts = VmCosts(),
        degradation: str = "demote",
    ) -> None:
        if degradation not in ("demote", "abort"):
            raise ValueError(
                f"degradation must be 'demote' or 'abort', got {degradation!r}"
            )
        self.memory_map = memory_map
        self.frames = frames
        self.shadow_allocator = shadow_allocator
        self.hpt = hpt
        self.costs = costs
        #: Shadow-space exhaustion policy: "demote" retries each failed
        #: superpage as four quarter-size shadow superpages (falling back
        #: to the existing base-page mapping below 16 KB); "abort"
        #: propagates :class:`~repro.core.shadow_space.ShadowSpaceExhausted`.
        self.degradation = degradation
        self.machine = None
        #: shadow region base -> live superpage record.
        self.shadow_superpages: Dict[int, ShadowSuperpage] = {}
        #: regions consumed by all-shadow base-page mappings (Section 4).
        self._all_shadow_regions: List[ShadowRegion] = []
        #: Cumulative count of degraded (demoted or base-fallback)
        #: superpage plans across all remaps; harvested into RunStats.
        self.degraded_remap_events = 0

    def attach_machine(self, machine) -> None:
        """Install the machine port (called by the System at build time)."""
        self.machine = machine

    # ------------------------------------------------------------------ #
    # Plain mapping
    # ------------------------------------------------------------------ #

    def map_region(
        self,
        process: Process,
        vstart: int,
        length: int,
        writable: bool = True,
    ) -> int:
        """Map ``[vstart, vstart+length)`` with discontiguous base pages.

        Returns the simulated cycle cost (zero-fill and bookkeeping).
        """
        length = align_up(length, BASE_PAGE_SIZE)
        pages = frames_for_bytes(length)
        cycles = self.costs.syscall_overhead
        for i in range(pages):
            vaddr = vstart + (i << BASE_PAGE_SHIFT)
            pfn = self.frames.allocate()
            mapping = process.page_table.map_base_page(vaddr, pfn, writable)
            self.hpt.preload(
                vaddr >> BASE_PAGE_SHIFT, mapping, space=process.pid
            )
            cycles += self.costs.map_page
        return cycles

    def unmap_region(self, process: Process, vstart: int, length: int) -> int:
        """Unmap a base-page region, freeing its frames."""
        length = align_up(length, BASE_PAGE_SIZE)
        removed = process.page_table.unmap_range(vstart, length)
        cycles = self.costs.syscall_overhead
        for mapping in removed:
            if mapping.is_superpage:
                raise MappingError(
                    "unmap_region cannot tear down superpages; "
                    "use remap_back first"
                )
            self.frames.free(mapping.pbase >> BASE_PAGE_SHIFT)
            self.hpt.purge_vpn(
                mapping.vbase >> BASE_PAGE_SHIFT, space=process.pid
            )
            cycles += self.costs.unmap_page
        if self.machine is not None:
            self.machine.shootdown_range(vstart, length)
        return cycles

    # ------------------------------------------------------------------ #
    # All-shadow mode (paper Section 4)
    # ------------------------------------------------------------------ #

    def map_region_all_shadow(
        self, process: Process, vstart: int, length: int
    ) -> int:
        """Map a region with base pages named by *shadow* addresses.

        Section 4's answer for machines whose entire physical address
        space is populated: route every virtual access through shadow
        memory, so the MTLB translates all traffic (and may need to grow
        — ablation A6 quantifies that).  Each base page gets a real
        frame plus a shadow page; the PTE points at the shadow page.

        Returns the simulated cycle cost.
        """
        machine = self._require_machine()
        length = align_up(length, BASE_PAGE_SIZE)
        pages = frames_for_bytes(length)
        cycles = self.costs.syscall_overhead
        page_cursor = 0
        while page_cursor < pages:
            # Shadow space is plentiful; carve 16 KB regions (the
            # smallest legal unit) and use them page by page.
            region = self.shadow_allocator.allocate(
                self.shadow_allocator.partition[0][0]
                if hasattr(self.shadow_allocator, "partition")
                else 16 << 10
            )
            self._all_shadow_regions.append(region)
            first_index = self.memory_map.shadow_page_index(region.base)
            region_pages = region.size >> BASE_PAGE_SHIFT
            for k in range(region_pages):
                if page_cursor >= pages:
                    break
                vaddr = vstart + (page_cursor << BASE_PAGE_SHIFT)
                pfn = self.frames.allocate()
                machine.mmc.write_mapping(first_index + k, pfn, valid=True)
                cycles += machine.uncached_mmc_write()
                shadow_pfn = (region.base >> BASE_PAGE_SHIFT) + k
                mapping = process.page_table.map_base_page(
                    vaddr, shadow_pfn
                )
                self.hpt.preload(
                    vaddr >> BASE_PAGE_SHIFT, mapping, space=process.pid
                )
                cycles += self.costs.map_page
                page_cursor += 1
        return cycles

    # ------------------------------------------------------------------ #
    # The paper's remap: base pages -> shadow-backed superpages
    # ------------------------------------------------------------------ #

    def remap_to_shadow(
        self, process: Process, vstart: int, length: int
    ) -> RemapReport:
        """Remap a region onto shadow-backed superpages (Section 2.4).

        The region must already be mapped with base pages.  Sub-16 KB head
        and tail fragments stay on base pages.  Every cost — cache flush,
        TLB/HPT shootdown, uncached MMC writes, PTE rewrites — is charged
        through the machine port and totalled in the returned report.
        """
        machine = self._require_machine()
        report = RemapReport()
        report.other_cycles += self.costs.syscall_overhead
        plans = plan_superpages(vstart, length)
        for plan in plans:
            self._remap_one(process, plan, report, machine)
        self.degraded_remap_events += report.degraded_superpages
        return report

    def _remap_one(
        self,
        process: Process,
        plan: SuperpagePlan,
        report: RemapReport,
        machine,
    ) -> None:
        table = process.page_table
        pages = plan.size >> BASE_PAGE_SHIFT

        # Gather the backing frames; the whole plan must be base-mapped
        # with *real* frames (an all-shadow base page would need its
        # shadow pages rearranged first, which this OS does not do).
        pfns: List[int] = []
        for i in range(pages):
            vaddr = plan.vaddr + (i << BASE_PAGE_SHIFT)
            mapping = table.lookup(vaddr)
            if mapping is None or mapping.is_superpage:
                raise MappingError(
                    f"{vaddr:#010x} is not mapped with a base page"
                )
            if self.memory_map.is_shadow(mapping.pbase):
                raise MappingError(
                    f"{vaddr:#010x} is already shadow-backed "
                    "(all-shadow mode); cannot promote in place"
                )
            pfns.append(mapping.pbase >> BASE_PAGE_SHIFT)

        try:
            region = self.shadow_allocator.allocate(plan.size)
        except ShadowSpaceExhausted:
            if self.degradation != "demote":
                raise
            # Graceful degradation: no shadow space at this size.  Demote
            # to four quarter-size shadow superpages (which the buddy or
            # bucket allocator may still satisfy); below the minimum
            # superpage size, leave the region on its existing base-page
            # mappings.  Nothing has been mutated yet, so backing out is
            # free.
            report.degraded_superpages += 1
            if plan.size > SUPERPAGE_SIZES[0]:
                quarter = plan.size // 4
                for k in range(4):
                    sub = SuperpagePlan(
                        vaddr=plan.vaddr + k * quarter, size=quarter
                    )
                    self._remap_one(process, sub, report, machine)
            else:
                report.fallback_pages += pages
            return
        report.other_cycles += self.costs.remap_superpage

        # Flush the region from the cache *before* the mapping changes,
        # translating with the still-current base-page mappings.
        flush_cycles, dirty_lines = machine.flush_virtual_range(
            process, plan.vaddr, plan.size
        )
        report.flush_cycles += flush_cycles
        report.dirty_lines_written += dirty_lines

        # Shoot down stale CPU TLB entries and HPT entries.
        machine.shootdown_range(plan.vaddr, plan.size)
        self.hpt.purge_range(plan.vaddr, plan.size, space=process.pid)

        # Program the MMC's shadow-to-physical mappings (uncached writes).
        first_index = self.memory_map.shadow_page_index(region.base)
        for i, pfn in enumerate(pfns):
            machine.mmc.write_mapping(first_index + i, pfn, valid=True)
            report.other_cycles += machine.uncached_mmc_write()
            report.other_cycles += self.costs.remap_page

        # Swap the PTEs: many base mappings -> one superpage mapping.
        table.unmap_range(plan.vaddr, plan.size)
        table.map_superpage(plan.vaddr, region.base, plan.size)

        record = ShadowSuperpage(
            process=process, vbase=plan.vaddr, region=region, pfns=list(pfns)
        )
        record.set_first_index(first_index)
        self.shadow_superpages[region.base] = record
        report.pages_remapped += pages
        report.superpages_created += 1

    def remap_back(
        self, process: Process, vbase: int
    ) -> RemapReport:
        """Tear one shadow superpage down to base pages again.

        Every base page must be resident (page swapped-out pages back in
        first).  Dirty data is flushed before the shadow mappings are
        cleared, so writebacks can never fault (Section 4).
        """
        machine = self._require_machine()
        table = process.page_table
        mapping = table.lookup(vbase)
        if mapping is None or not mapping.is_superpage:
            raise MappingError(f"{vbase:#010x} is not a superpage")
        record = self.shadow_superpages.get(mapping.pbase)
        if record is None:
            raise MappingError(
                f"superpage at {vbase:#010x} is not shadow-backed"
            )
        if any(pfn is None for pfn in record.pfns):
            raise MappingError(
                "cannot remap back while base pages are swapped out"
            )
        report = RemapReport()
        report.other_cycles += self.costs.syscall_overhead

        flush_cycles, dirty_lines = machine.flush_virtual_range(
            process, mapping.vbase, mapping.size
        )
        report.flush_cycles += flush_cycles
        report.dirty_lines_written += dirty_lines
        machine.shootdown_range(mapping.vbase, mapping.size)
        self.hpt.purge_range(
            mapping.vbase, mapping.size, space=process.pid
        )

        table.unmap_range(mapping.vbase, mapping.size)
        first_index = record.first_shadow_index
        for i, pfn in enumerate(record.pfns):
            machine.mmc.clear_mapping(first_index + i)
            report.other_cycles += machine.uncached_mmc_write()
            vaddr = mapping.vbase + (i << BASE_PAGE_SHIFT)
            base_mapping = table.map_base_page(vaddr, pfn)
            self.hpt.preload(
                vaddr >> BASE_PAGE_SHIFT, base_mapping, space=process.pid
            )
            report.other_cycles += self.costs.unmap_page

        self.shadow_allocator.free(record.region)
        del self.shadow_superpages[mapping.pbase]
        report.pages_remapped += record.base_pages
        report.superpages_created -= 1
        return report

    # ------------------------------------------------------------------ #
    # Conventional superpages (ablation A1 baseline)
    # ------------------------------------------------------------------ #

    def map_region_conventional_superpages(
        self, process: Process, vstart: int, length: int
    ) -> int:
        """Map a region with *conventional* superpages.

        Each planned superpage needs physically contiguous frames aligned
        to the superpage size — the requirement shadow memory removes.
        Raises :class:`repro.os_model.frames.OutOfMemory` when
        fragmentation defeats the allocation.  Fragments are base-mapped.
        Returns the cycle cost.
        """
        length = align_up(length, BASE_PAGE_SIZE)
        cycles = self.costs.syscall_overhead
        plans = plan_superpages(vstart, length)
        covered = set()
        for plan in plans:
            pages = plan.size >> BASE_PAGE_SHIFT
            first_pfn = self.frames.allocate_contiguous(
                pages, align_frames=pages
            )
            process.page_table.map_superpage(
                plan.vaddr, first_pfn << BASE_PAGE_SHIFT, plan.size
            )
            cycles += self.costs.remap_superpage
            cycles += pages * self.costs.map_page
            covered.update(range(plan.vaddr, plan.end, BASE_PAGE_SIZE))
        for vaddr in range(vstart, vstart + length, BASE_PAGE_SIZE):
            if vaddr in covered:
                continue
            pfn = self.frames.allocate()
            mapping = process.page_table.map_base_page(vaddr, pfn)
            self.hpt.preload(
                vaddr >> BASE_PAGE_SHIFT, mapping, space=process.pid
            )
            cycles += self.costs.map_page
        return cycles

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def superpage_record(self, shadow_base: int) -> ShadowSuperpage:
        """Return the record for the superpage at *shadow_base*."""
        return self.shadow_superpages[shadow_base]

    def record_for_shadow_index(
        self, shadow_index: int
    ) -> Optional[ShadowSuperpage]:
        """Find the live superpage containing a shadow base page."""
        for record in self.shadow_superpages.values():
            first = record.first_shadow_index
            if first <= shadow_index < first + record.base_pages:
                return record
        return None

    def _require_machine(self):
        if self.machine is None:
            raise RuntimeError("VM subsystem has no machine attached")
        return self.machine
