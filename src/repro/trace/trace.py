"""Trace containers: the reference streams workload models produce.

A :class:`Trace` is an ordered list of items, each either a kernel
:class:`~repro.trace.events.KernelEvent` (map this region, remap that one)
or a :class:`Segment` of memory references.  Segments are numpy-backed for
compact storage and fast vectorised generation; the simulator converts
them to plain lists right before its hot loop.

Reference encoding per element:

* ``ops``   — uint8, 0 = load, 1 = store;
* ``vaddrs`` — int64 virtual addresses;
* ``gaps``  — int32 count of non-memory instructions *preceding* the
  reference (the reference instruction itself is charged separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Union

import numpy as np

from .events import KernelEvent

OP_LOAD = 0
OP_STORE = 1


class Segment:
    """One contiguous run of memory references."""

    __slots__ = ("label", "ops", "vaddrs", "gaps", "text_pages")

    def __init__(
        self,
        label: str,
        ops: np.ndarray,
        vaddrs: np.ndarray,
        gaps: np.ndarray,
        text_pages: int = 1,
    ) -> None:
        ops = np.ascontiguousarray(ops, dtype=np.uint8)
        vaddrs = np.ascontiguousarray(vaddrs, dtype=np.int64)
        gaps = np.ascontiguousarray(gaps, dtype=np.int32)
        if not (len(ops) == len(vaddrs) == len(gaps)):
            raise ValueError("ops, vaddrs and gaps must have equal length")
        if len(vaddrs) and int(vaddrs.min()) < 0:
            raise ValueError("negative virtual address in segment")
        if len(gaps) and int(gaps.min()) < 0:
            raise ValueError("negative instruction gap in segment")
        self.label = label
        self.ops = ops
        self.vaddrs = vaddrs
        self.gaps = gaps
        #: Distinct instruction pages the segment's code spans (drives the
        #: micro-ITLB / instruction-translation model).
        self.text_pages = max(1, text_pages)

    @classmethod
    def trusted(
        cls,
        label: str,
        ops: np.ndarray,
        vaddrs: np.ndarray,
        gaps: np.ndarray,
        text_pages: int = 1,
    ) -> "Segment":
        """Wrap already-validated arrays without copying or scanning.

        The chunked trace store hands out memory-mapped column views
        whose contents were range-checked and CRC-verified at write
        time; re-running ``__init__``'s ``min()`` scans here would fault
        in every page of the mapping up front, defeating the lazy
        sharing the store exists for.  Callers must pass contiguous
        arrays of the canonical dtypes and equal length.
        """
        seg = cls.__new__(cls)
        seg.label = label
        seg.ops = ops
        seg.vaddrs = vaddrs
        seg.gaps = gaps
        seg.text_pages = max(1, text_pages)
        return seg

    @property
    def refs(self) -> int:
        """Number of memory references."""
        return len(self.vaddrs)

    @property
    def instructions(self) -> int:
        """Total instructions (references + the gaps between them)."""
        return self.refs + int(self.gaps.sum())

    @property
    def stores(self) -> int:
        """Number of store references."""
        return int(self.ops.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment({self.label!r}, refs={self.refs}, "
            f"instructions={self.instructions})"
        )


TraceItem = Union[KernelEvent, Segment]


@dataclass
class Trace:
    """A complete program trace: interleaved kernel events and segments."""

    name: str
    items: List[TraceItem] = field(default_factory=list)
    #: Virtual base of the program's text segment (instruction fetches).
    text_base: int = 0x0100_0000
    #: Size of the text segment in bytes.
    text_size: int = 64 << 10

    def add(self, item: TraceItem) -> None:
        """Append an event or segment."""
        self.items.append(item)

    def segments(self) -> Iterator[Segment]:
        """Yield the reference segments in order."""
        for item in self.items:
            if isinstance(item, Segment):
                yield item

    def events(self) -> Iterator[KernelEvent]:
        """Yield the kernel events in order."""
        for item in self.items:
            if not isinstance(item, Segment):
                yield item

    @property
    def total_refs(self) -> int:
        """Total memory references across all segments."""
        return sum(seg.refs for seg in self.segments())

    @property
    def total_instructions(self) -> int:
        """Total instructions across all segments."""
        return sum(seg.instructions for seg in self.segments())

    def footprint_bytes(self) -> int:
        """Bytes of address space touched (distinct base pages x 4 KB)."""
        pages = set()
        for seg in self.segments():
            pages.update(np.unique(seg.vaddrs >> 12).tolist())
        return len(pages) << 12

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, items={len(self.items)}, "
            f"refs={self.total_refs})"
        )


def make_segment(
    label: str,
    vaddrs: Sequence[int],
    write_mask: Union[Sequence[bool], np.ndarray, None] = None,
    gap: Union[int, np.ndarray] = 2,
    text_pages: int = 1,
) -> Segment:
    """Convenience constructor used by workload models and tests.

    *gap* may be a scalar (constant instruction spacing) or an array.
    *write_mask* marks stores; None means all loads.
    """
    vaddrs = np.asarray(vaddrs, dtype=np.int64)
    n = len(vaddrs)
    if write_mask is None:
        ops = np.zeros(n, dtype=np.uint8)
    else:
        ops = np.asarray(write_mask, dtype=bool).astype(np.uint8)
    if np.isscalar(gap):
        gaps = np.full(n, int(gap), dtype=np.int32)
    else:
        gaps = np.asarray(gap, dtype=np.int32)
    return Segment(label, ops, vaddrs, gaps, text_pages=text_pages)
