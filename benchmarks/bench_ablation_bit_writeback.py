"""A9 — the MTLB's referenced/dirty-bit write-back cost.

The paper's simulated MTLB did not write updated accounting bits back to
its in-DRAM table and predicted a negligible performance effect
(Section 3.4).  This bench charges the write-backs and checks the claim.
"""

from repro.bench import run_bit_writeback_ablation


def test_bit_writeback_ablation(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_bit_writeback_ablation(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    assert result.shape_errors == [], "\n".join(result.shape_errors)
