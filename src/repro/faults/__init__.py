"""Deterministic fault injection and recovery accounting.

See :mod:`repro.faults.plan` for the model and DESIGN.md's "Fault model
and recovery" section for the injection sites and recovery protocols.
"""

from .plan import (
    DIRTY_DROP,
    DRAM_TRANSIENT,
    FAULT_SITES,
    MTLB_PARITY,
    SHADOW_BITFLIP,
    FaultConfig,
    FaultPlan,
    FaultStats,
)

__all__ = [
    "DIRTY_DROP",
    "DRAM_TRANSIENT",
    "FAULT_SITES",
    "MTLB_PARITY",
    "SHADOW_BITFLIP",
    "FaultConfig",
    "FaultPlan",
    "FaultStats",
]
