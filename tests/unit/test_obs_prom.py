"""Unit tests: the Prometheus text-format encoder.

The encoder is consumed by a real scraper (the daemon's ``/metrics``),
so the tests pin the exposition-format contract: counter ``_total``
suffixing, TYPE lines, cumulative histogram buckets ending in ``+Inf``,
name sanitisation, and label escaping.
"""

from repro.obs import (
    MetricsRegistry,
    render_prometheus,
    render_prometheus_mapping,
)


def lines_of(text):
    return [line for line in text.splitlines() if line]


class TestRenderRegistry:
    def test_counters_get_total_suffix_and_type(self):
        reg = MetricsRegistry()
        reg.counter("serve.daemon.store_hits").inc(3)
        out = render_prometheus(reg)
        assert "# TYPE serve_daemon_store_hits_total counter" in out
        assert "serve_daemon_store_hits_total 3" in out

    def test_gauges_keep_their_name(self):
        reg = MetricsRegistry()
        reg.gauge("serve.queue_depth").set(7)
        out = render_prometheus(reg)
        assert "# TYPE serve_queue_depth gauge" in out
        assert "serve_queue_depth 7" in out

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("wall.seconds", (1.0, 5.0))
        for value in (0.5, 0.7, 3.0, 100.0):
            hist.observe(value)
        out = render_prometheus(reg)
        assert '# TYPE wall_seconds histogram' in out
        assert 'wall_seconds_bucket{le="1.0"} 2' in out
        assert 'wall_seconds_bucket{le="5.0"} 3' in out
        assert 'wall_seconds_bucket{le="+Inf"} 4' in out
        assert "wall_seconds_count 4" in out
        assert "wall_seconds_sum" in out

    def test_extra_labels_attach_to_every_series(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.gauge("depth").set(1)
        out = render_prometheus(reg, extra_labels={"instance": "d-1"})
        assert 'hits_total{instance="d-1"} 1' in out
        assert 'depth{instance="d-1"} 1' in out

    def test_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.counter("serve.daemon.store-hits").inc()
        out = render_prometheus(reg)
        assert "serve_daemon_store_hits_total" in out

    def test_scrape_is_side_effect_free(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(5)
        first = render_prometheus(reg)
        second = render_prometheus(reg)
        assert first == second


class TestRenderMapping:
    def test_mapping_exports_as_gauges(self):
        out = render_prometheus_mapping(
            {"total_cycles": 123, "tlb.miss_rate": 0.5}
        )
        assert "# TYPE total_cycles gauge" in out
        assert "total_cycles 123" in out
        assert "tlb_miss_rate 0.5" in out

    def test_mapping_labels_and_escaping(self):
        out = render_prometheus_mapping(
            {"x": 1}, extra_labels={"run": 'em3d|"quoted"'}
        )
        assert 'x{run="em3d|\\"quoted\\""} 1' in out

    def test_sorted_and_newline_terminated(self):
        out = render_prometheus_mapping({"b": 2, "a": 1})
        assert out.endswith("\n")
        body = lines_of(out)
        assert body.index("a 1") < body.index("b 2")
