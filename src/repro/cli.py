"""repro-bench: run the paper's experiments from the command line.

Usage::

    repro-bench list                 # what can be run
    repro-bench fig2                 # Figure 2 partition table
    repro-bench fig3 [--quick]       # the main result matrix
    repro-bench fig4 [--quick]       # em3d MTLB sensitivity (4A + 4B)
    repro-bench init-costs [--quick] # Section 3.3 cost table
    repro-bench reach [--quick]      # 64+MTLB vs 128 equivalence
    repro-bench ablations [--quick]  # A1-A10
    repro-bench sensitivity [--quick]# S1/S2
    repro-bench all [--quick]        # everything, in order

``--quick`` uses CI-sized inputs; without it the EXPERIMENTS.md scales
are used (several minutes for fig3).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .bench import (
    BenchContext,
    improvement_summary,
    measure_em3d_remap,
    run_all_shadow_ablation,
    run_allocator_ablation,
    run_bit_writeback_ablation,
    run_cache_sensitivity,
    run_check_penalty_ablation,
    run_fig2,
    run_figure3,
    run_figure4,
    run_fragmentation_ablation,
    run_gather_ablation,
    run_handler_sensitivity,
    run_multiprog_ablation,
    run_promotion_ablation,
    run_reach_equivalence,
    run_recoloring_ablation,
    run_stream_buffer_ablation,
)
from .workloads import PAPER_SUITE

EXPERIMENTS = (
    "fig2", "fig3", "fig4", "init-costs", "reach", "ablations",
    "sensitivity",
)


def _report(title: str, report: str, errors: List[str]) -> int:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")
    print(report)
    if errors:
        print("\nSHAPE CHECK FAILURES:")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("\nshape checks: all passed")
    return 0


def _run(name: str, context: BenchContext) -> int:
    if name == "fig2":
        report, errors = run_fig2()
        return _report("E1 / Figure 2", report, errors)
    if name == "fig3":
        result = run_figure3(context, progress=True)
        status = _report("E2 / Figure 3", result.report,
                         result.shape_errors)
        print("\nMTLB improvement at the 96-entry base:")
        for w, gain in improvement_summary(
            result.matrix, PAPER_SUITE
        ).items():
            print(f"  {w:12s} {gain:+.1f}%")
        return status
    if name == "fig4":
        result = run_figure4(context, progress=True)
        return _report(
            "E3+E4 / Figure 4",
            result.report_a + "\n\n" + result.report_b,
            result.shape_errors,
        )
    if name == "init-costs":
        result = measure_em3d_remap(context)
        return _report("E5 / Section 3.3", result.report,
                       result.shape_errors)
    if name == "reach":
        result = run_reach_equivalence(context, progress=True)
        return _report("E6 / reach equivalence", result.report,
                       result.shape_errors)
    if name == "ablations":
        status = 0
        frag = run_fragmentation_ablation()
        status |= _report("A1 / fragmentation", frag.report,
                          frag.shape_errors)
        alloc = run_allocator_ablation()
        status |= _report("A2 / shadow allocators", alloc.report,
                          alloc.shape_errors)
        check = run_check_penalty_ablation(context)
        status |= _report("A3 / shadow-check penalty", check.report,
                          check.shape_errors)
        promo = run_promotion_ablation(context)
        status |= _report("A4 / online promotion", promo.report,
                          promo.shape_errors)
        stream = run_stream_buffer_ablation(context)
        status |= _report("A5 / MMC stream buffers", stream.report,
                          stream.shape_errors)
        allshadow = run_all_shadow_ablation(context)
        status |= _report("A6 / all-shadow mode", allshadow.report,
                          allshadow.shape_errors)
        recolor = run_recoloring_ablation()
        status |= _report("A7 / page recoloring", recolor.report,
                          recolor.shape_errors)
        multi = run_multiprog_ablation(context)
        status |= _report("A8 / multiprogramming", multi.report,
                          multi.shape_errors)
        bits = run_bit_writeback_ablation(context)
        status |= _report("A9 / accounting-bit write-back", bits.report,
                          bits.shape_errors)
        gathered = run_gather_ablation()
        status |= _report("A10 / page gather", gathered.report,
                          gathered.shape_errors)
        return status
    if name == "sensitivity":
        status = 0
        cache = run_cache_sensitivity(context)
        status |= _report("S1 / cache associativity", cache.report,
                          cache.shape_errors)
        handler = run_handler_sensitivity(context)
        status |= _report("S2 / miss-handler cost", handler.report,
                          handler.shape_errors)
        return status
    raise ValueError(f"unknown experiment {name!r}")


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        choices=EXPERIMENTS + ("all", "list"),
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-sized inputs (fast, same shape checks)",
    )
    parser.add_argument(
        "--seed", type=int, default=1998, help="workload RNG seed"
    )
    parser.add_argument(
        "--keep-going", action="store_true",
        help=(
            "continue past a failing experiment instead of aborting; "
            "the exit status is still non-zero if anything failed"
        ),
    )
    parser.add_argument(
        "--max-refs", type=int, default=None, metavar="N",
        help=(
            "per-run reference budget: abort any single (workload, "
            "config) run that would simulate more than N references"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    # --quick forces quick scales; otherwise defer to REPRO_BENCH_QUICK.
    context = BenchContext(
        quick=True if args.quick else None,
        seed=args.seed,
        max_references=args.max_refs,
    )
    todo = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    status = 0
    for name in todo:
        if args.keep_going:
            try:
                status |= _run(name, context)
            except Exception as exc:  # noqa: BLE001 - harness boundary
                print(
                    f"\nEXPERIMENT FAILED: {name}: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
                status |= 1
        else:
            status |= _run(name, context)
    return status


if __name__ == "__main__":
    sys.exit(main())
