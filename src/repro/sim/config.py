"""System configuration: every knob of the simulated machine in one tree.

The defaults reproduce the paper's simulation environment (Section 3.2):
a 240 MHz single-issue CPU; a 512 KB direct-mapped VIPT writeback data
cache with 32-byte lines and single-cycle hits; a 120 MHz Runway-style bus
(2:1 clock ratio); an HP-like MMC; a fully associative unified CPU TLB
with NRU replacement, filled by a software handler probing a 16 K-entry
hashed page table; and, when enabled, a 128-entry 2-way NRU MTLB.

Presets:

* :func:`paper_base` — the normalisation baseline: 96-entry CPU TLB, no
  MTLB;
* :func:`paper_no_mtlb` / :func:`paper_mtlb` — the Figure 3 matrix;
* :func:`figure4_configs` — the Figure 4 MTLB size/associativity sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..core.addrspace import PhysicalMemoryMap
from ..core.backends import DEFAULT_BACKEND, get_backend
from ..core.backends.coalesced import CoalescedConfig
from ..core.backends.victima import VictimaConfig
from ..cpu.miss_handler import MissHandlerCosts
from ..faults import FaultConfig
from ..mem.bus import BusTiming
from ..mem.dram import DramTiming
from ..mem.mmc import MmcTiming
from ..mem.stream_buffers import StreamBufferConfig
from ..obs import ObsConfig
from ..os_model.kernel import KernelCosts
from ..os_model.paging import PagingCosts
from ..os_model.promotion import PromotionConfig
from ..os_model.vm import VmCosts

#: CPU clock in Hz (240 MHz), for converting cycles to seconds in reports.
CPU_HZ = 240_000_000


@dataclass(frozen=True)
class TlbConfig:
    """CPU TLB parameters."""

    entries: int = 96


@dataclass(frozen=True)
class MtlbConfig:
    """Memory-controller TLB parameters.

    ``associativity=0`` means fully associative.  ``enabled=False`` gives
    the conventional baseline: no shadow window is decoded and no
    per-operation shadow check is charged.
    """

    enabled: bool = False
    entries: int = 128
    associativity: int = 2


@dataclass(frozen=True)
class CacheConfig:
    """Data cache parameters (paper: 512 KB direct-mapped, 32 B lines)."""

    size_bytes: int = 512 << 10
    associativity: int = 1
    #: False = virtually indexed (the paper's PA8000-like cache); True =
    #: physically indexed, which the page-recoloring extension needs.
    physically_indexed: bool = False
    #: Cycles charged per line visited by a flush loop (fdc-style
    #: instruction); calibrated so a 4 KB page flush costs ~1400 cycles
    #: as measured in the paper's Section 3.3.
    flush_line_cycles: int = 10
    #: Extra cycles per dirty line written back during a flush.
    flush_dirty_cycles: int = 4


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated machine."""

    tlb: TlbConfig = TlbConfig()
    mtlb: MtlbConfig = MtlbConfig()
    cache: CacheConfig = CacheConfig()
    bus: BusTiming = BusTiming()
    dram: DramTiming = DramTiming()
    mmc: MmcTiming = MmcTiming()
    handler: MissHandlerCosts = MissHandlerCosts()
    vm_costs: VmCosts = VmCosts()
    kernel_costs: KernelCosts = KernelCosts()
    paging_costs: PagingCosts = PagingCosts()
    memory_map: PhysicalMemoryMap = PhysicalMemoryMap()
    #: Execute Remap/HeapGrow-remap trace events (shadow superpages).
    #: Only meaningful with an enabled MTLB.
    use_superpages: bool = False
    #: Online promotion policy (Section 5 / Romer-style): the kernel
    #: remaps regions to shadow superpages on its own once their TLB
    #: misses cross the threshold.  Usually used with
    #: ``use_superpages=False`` so static remap hints are ignored.
    promotion: PromotionConfig = PromotionConfig()
    #: MMC stream buffers (Section 6 extension): prefetch sequential
    #: miss streams behind the MTLB's retranslation.
    stream_buffers: StreamBufferConfig = StreamBufferConfig()
    #: Section 4's all-shadow mode: every user mapping is named by
    #: shadow addresses, so the MTLB translates *all* traffic (for
    #: machines whose whole physical address space is populated).
    all_shadow: bool = False
    #: Physical frame hand-out order; "shuffled" models a long-running
    #: machine whose free list is scattered.
    fragmentation: str = "shuffled"
    seed: int = 1998
    #: Average instructions per instruction-page transition, for the
    #: micro-ITLB model (one 4 KB page of PA-RISC-ish code is ~1024
    #: instructions; loops re-execute pages, so transitions are rarer).
    ifetch_page_instructions: int = 4096
    #: Deterministic fault injection (DESIGN.md "Fault model and
    #: recovery").  The all-zero default is a strict no-op: no
    #: FaultPlan is built and no PRNG is ever consulted, so results are
    #: bit-identical to a build without the fault layer.
    faults: FaultConfig = FaultConfig()
    #: Oracle translation checker: cross-validate every Nth shadow
    #: translation against the shadow page table and the kernel's
    #: superpage records, raising
    #: :class:`~repro.errors.SilentCorruption` on any escape.  0 (the
    #: default) disables the checker entirely.
    check_translations: int = 0
    #: Shadow-space exhaustion policy: demote failed superpage plans to
    #: smaller shadow superpages / base pages ("demote"), or propagate
    #: ShadowSpaceExhausted ("abort").
    degradation_policy: str = "demote"
    #: Observability (DESIGN.md §9): event tracing and phase-resolved
    #: cycle attribution.  Disabled by default; the disabled path costs
    #: one predictable branch per miss-path event and keeps RunStats
    #: bit-identical to a build without the obs layer.
    obs: ObsConfig = ObsConfig()
    #: Trace-execution engine (DESIGN.md §10).  ``"scalar"`` is the
    #: per-reference loop; ``"vector"`` is the fast-forward engine that
    #: retires whole TLB-hit + cache-hit runs with numpy and is
    #: bit-identical to scalar in every RunStats/metrics value.
    #: ``"auto"`` (default) picks vector whenever the configuration is
    #: batchable — since the PR-8 restriction lift that is every
    #: expressible configuration (set-associative caches batch via a
    #: residency plane, armed fault plans via window clamping at
    #: scheduled triggers, multiprogrammed mixes via per-process
    #: predictor state); only a foreign cache model the engine has no
    #: mirror for still forces scalar.  ``"vector"`` on such a machine
    #: raises at machine-build time.
    engine: str = "auto"
    #: Translation backend (DESIGN.md §16): which machine owns the path
    #: between a CPU TLB miss and the installed entry.  ``"mtlb"`` is
    #: the paper's design (and covers the conventional baseline when
    #: ``mtlb.enabled`` is False); ``"coalesced"`` and ``"victima"``
    #: are the comparison architectures.  Resolved against the registry
    #: in :mod:`repro.core.backends`; unknown names raise
    #: :class:`~repro.errors.UnknownBackend` here, at config time.
    backend: str = DEFAULT_BACKEND
    #: Knobs of the range-coalescing backend; inert (and excluded from
    #: result fingerprints) unless ``backend="coalesced"``.
    coalesced: CoalescedConfig = CoalescedConfig()
    #: Knobs of the cache-resident entry pool; inert (and excluded from
    #: result fingerprints) unless ``backend="victima"``.
    victima: VictimaConfig = VictimaConfig()
    #: Invariant sanitizers (DESIGN.md §11).  When True, an architectural
    #: invariant suite (``repro.check.sanitizers``) audits the TLB,
    #: cache, shadow page table, MTLB, and frame allocator after every
    #: trace segment and kernel event, raising
    #: :class:`~repro.errors.InvariantViolation` on the first broken
    #: invariant.  The sanitizers only *read* state, so results stay
    #: bit-identical either way; the disabled path costs one attribute
    #: test per boundary.
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ("auto", "scalar", "vector"):
            raise ValueError(
                "engine must be 'auto', 'scalar' or 'vector', "
                f"got {self.engine!r}"
            )
        # Backend resolution is part of construction: unknown names die
        # here (UnknownBackend) and each backend vetoes knob
        # combinations it cannot run (the mtlb backend owns the four
        # historical shadow-machine checks).
        get_backend(self.backend).validate(self)
        if self.check_translations < 0:
            raise ValueError("check_translations must be >= 0")
        if self.degradation_policy not in ("demote", "abort"):
            raise ValueError(
                "degradation_policy must be 'demote' or 'abort', "
                f"got {self.degradation_policy!r}"
            )

    @property
    def label(self) -> str:
        """Short human-readable configuration tag for report rows.

        Non-default backends get an ``@backend`` suffix so cross-backend
        sweeps produce distinct run keys; ``mtlb`` configs keep their
        historical labels.
        """
        if self.mtlb.enabled:
            assoc = (
                "full"
                if self.mtlb.associativity in (0, self.mtlb.entries)
                else f"{self.mtlb.associativity}w"
            )
            label = (
                f"tlb{self.tlb.entries}+mtlb{self.mtlb.entries}{assoc}"
            )
        else:
            label = f"tlb{self.tlb.entries}"
        if self.backend != DEFAULT_BACKEND:
            label += f"@{self.backend}"
        return label


# ---------------------------------------------------------------------- #
# Presets
# ---------------------------------------------------------------------- #


def paper_base() -> SystemConfig:
    """The paper's normalisation base: 96-entry CPU TLB, no MTLB."""
    return SystemConfig(tlb=TlbConfig(entries=96))


def paper_no_mtlb(tlb_entries: int) -> SystemConfig:
    """A conventional system with the given CPU TLB size."""
    return SystemConfig(tlb=TlbConfig(entries=tlb_entries))


def paper_mtlb(
    tlb_entries: int,
    mtlb_entries: int = 128,
    mtlb_associativity: int = 2,
) -> SystemConfig:
    """An MTLB system: shadow superpages enabled, given geometry."""
    return SystemConfig(
        tlb=TlbConfig(entries=tlb_entries),
        mtlb=MtlbConfig(
            enabled=True,
            entries=mtlb_entries,
            associativity=mtlb_associativity,
        ),
        use_superpages=True,
    )


def paper_promotion(
    tlb_entries: int = 96,
    misses_per_page: float = 3.0,
    mtlb_entries: int = 128,
    mtlb_associativity: int = 2,
) -> SystemConfig:
    """An MTLB system with *online* superpage promotion.

    Static remap hints in traces are ignored; the kernel promotes
    regions itself once their misses cross the threshold (extension of
    Section 5's discussion).
    """
    return SystemConfig(
        tlb=TlbConfig(entries=tlb_entries),
        mtlb=MtlbConfig(
            enabled=True,
            entries=mtlb_entries,
            associativity=mtlb_associativity,
        ),
        use_superpages=False,
        promotion=PromotionConfig(
            enabled=True, misses_per_page=misses_per_page
        ),
    )


def figure3_configs() -> Dict[str, SystemConfig]:
    """The Figure 3 matrix: TLB in {64, 96, 128} x {no MTLB, 128e MTLB}."""
    configs: Dict[str, SystemConfig] = {}
    for entries in (64, 96, 128):
        no = paper_no_mtlb(entries)
        yes = paper_mtlb(entries)
        configs[no.label] = no
        configs[yes.label] = yes
    return configs


def figure4_configs() -> Dict[str, SystemConfig]:
    """The Figure 4 sweep: 128-entry TLB, MTLB size x associativity.

    Includes the no-MTLB reference and MTLB entries in {128, 256, 512}
    with associativity in {2, 4, full}.
    """
    configs: Dict[str, SystemConfig] = {"tlb128": paper_no_mtlb(128)}
    for entries in (128, 256, 512):
        for assoc in (2, 4, 0):
            cfg = paper_mtlb(128, entries, assoc)
            configs[cfg.label] = cfg
    return configs


def with_check_penalty(config: SystemConfig, mmc_cycles: int) -> SystemConfig:
    """Return *config* with a different per-operation shadow-check cost.

    Used by ablation A3 (the paper calls its 1-cycle assumption "likely
    overly conservative").
    """
    return replace(config, mmc=replace(config.mmc, shadow_check=mmc_cycles))
