"""repro.serve — the scenario service (DESIGN.md §12).

Three layers, bottom-up:

* :mod:`~repro.serve.fingerprint` — canonical scenario fingerprints,
  the content address of one simulation outcome;
* :mod:`~repro.serve.store` — the content-addressed, CRC-checked
  :class:`ResultStore` of completed runs (corrupt entries quarantined,
  never served);
* :mod:`~repro.serve.scheduler` / :mod:`~repro.serve.client` — the
  sharded async :class:`SweepScheduler` (asyncio front,
  ``ProcessPoolExecutor`` shards, per-scenario crash isolation,
  obs-instrumented) and its :class:`SweepClient` front door.

``repro serve sweep`` and ``repro serve status`` are the CLI over this
package; :meth:`repro.bench.runner.BenchContext.run_matrix` is its
oldest client.
"""

from .client import SweepClient
from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_scenario,
    scenario_fingerprint,
)
from .scheduler import (
    SweepScheduler,
    SweepTicket,
    execute_spec,
    spec_fingerprint,
    spec_scale,
)
from .store import (
    STORE_SCHEMA,
    ResultStore,
    StoreRecord,
    default_store_root,
)

__all__ = [
    "FINGERPRINT_VERSION",
    "STORE_SCHEMA",
    "ResultStore",
    "StoreRecord",
    "SweepClient",
    "SweepScheduler",
    "SweepTicket",
    "canonical_scenario",
    "default_store_root",
    "execute_spec",
    "scenario_fingerprint",
    "spec_fingerprint",
    "spec_scale",
]
