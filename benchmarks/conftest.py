"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_QUICK=1`` for CI-sized inputs (minutes become seconds;
the shape checks still hold).  EXPERIMENTS.md records the scales behind
the reported numbers.
"""

import pytest

from repro.bench import BenchContext, run_figure4


@pytest.fixture(scope="session")
def ctx():
    """One BenchContext (and trace cache) for the whole session."""
    return BenchContext()


def figure4_result(ctx):
    """Memoised Figure 4 sweep (shared by the 4(A) and 4(B) benches)."""
    cached = getattr(ctx, "_figure4_result", None)
    if cached is None:
        cached = run_figure4(ctx)
        ctx._figure4_result = cached
    return cached
