"""Simulated user processes.

A process is an address space: a page table, named segments (text, data,
buffers...), and a heap grown by ``sbrk``.  Workload models allocate their
data structures through these, so the addresses in a trace correspond to
real mappings the miss handler can find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.addrspace import BASE_PAGE_SIZE, align_up
from .page_table import PageTable


@dataclass(frozen=True)
class Segment:
    """A named, contiguous region of the process's virtual space."""

    name: str
    vbase: int
    length: int

    @property
    def vend(self) -> int:
        """One past the last byte of the segment."""
        return self.vbase + self.length


@dataclass
class Process:
    """One simulated process."""

    pid: int
    name: str
    page_table: PageTable = field(default_factory=PageTable)
    segments: Dict[str, Segment] = field(default_factory=dict)
    #: Base of the heap region (grows upward from here).
    heap_base: int = 0x1000_0000
    #: Current program break (first unmapped heap address).
    brk: int = 0x1000_0000

    def add_segment(self, name: str, vbase: int, length: int) -> Segment:
        """Register a named segment (page-aligned)."""
        if vbase % BASE_PAGE_SIZE:
            raise ValueError(f"segment base {vbase:#010x} not page aligned")
        length = align_up(length, BASE_PAGE_SIZE)
        for seg in self.segments.values():
            if vbase < seg.vend and vbase + length > seg.vbase:
                raise ValueError(
                    f"segment {name!r} overlaps segment {seg.name!r}"
                )
        segment = Segment(name=name, vbase=vbase, length=length)
        self.segments[name] = segment
        return segment

    def segment(self, name: str) -> Segment:
        """Return the named segment; raises KeyError if absent."""
        return self.segments[name]

    def grow_brk(self, new_brk: int) -> int:
        """Advance the program break; returns the old break."""
        if new_brk < self.brk:
            raise ValueError("shrinking the heap is not supported")
        old = self.brk
        self.brk = new_brk
        return old

    @property
    def heap_bytes(self) -> int:
        """Current heap extent in bytes."""
        return self.brk - self.heap_base

    def resolve_vpn(self, vpn: int):
        """Resolver hook for the hashed page table."""
        return self.page_table.lookup(vpn << 12)
