"""Extensions the paper sketches as future work (Section 6).

* :mod:`repro.ext.recoloring` — no-copy page recoloring via shadow
  memory;
* :mod:`repro.ext.gather` — page-granularity gathering of scattered hot
  pages into one dense superpage alias (the Impulse programme);
* (the stream-buffer extension lives in
  :mod:`repro.mem.stream_buffers`, inside the memory controller).
"""

from .gather import GatherMapper, GatherRegion
from .recoloring import RECOLOR_OVERHEAD_CYCLES, Recolorer, RecolorStats

__all__ = [
    "GatherMapper",
    "GatherRegion",
    "RECOLOR_OVERHEAD_CYCLES",
    "Recolorer",
    "RecolorStats",
]
