"""Single-entry micro-ITLB for instruction translations.

The paper's simulator models a one-entry micro-ITLB holding the most recent
instruction translation in front of the main unified TLB.  Because the
instruction cache is assumed perfect, the only instruction-side events that
cost anything are micro-ITLB misses that fall through to the main TLB (and,
rarely, to the software miss handler).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .tlb import TlbEntry


@dataclass
class MicroItlbStats:
    """Event counters for the micro-ITLB."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0


class MicroItlb:
    """Holds the single most recent instruction-page translation."""

    def __init__(self) -> None:
        self._entry: Optional[TlbEntry] = None
        self.stats = MicroItlbStats()

    def lookup(self, vaddr: int) -> Optional[TlbEntry]:
        """Return the cached entry if it covers *vaddr*, else None."""
        self.stats.lookups += 1
        entry = self._entry
        if entry is not None and entry.vbase <= vaddr < entry.vend:
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        return None

    def refill(self, entry: TlbEntry) -> None:
        """Replace the cached translation (after a main-TLB lookup)."""
        self._entry = entry

    def invalidate(self) -> None:
        """Drop the cached translation (on shootdowns)."""
        self._entry = None
