"""The MiniKernel: boot, processes, syscall dispatch, cost accounting.

The paper's simulations run a BSD-based microkernel from boot through the
benchmark's ``exit()``.  This facade reproduces the pieces that matter to
the measurements: the physical memory layout (shadow page table and hashed
page table carved out of low DRAM, covered by a pinned block-TLB mapping),
process and heap setup, the ``remap()``/``sbrk()`` syscalls, and fixed
boot/exec/exit overheads that are included in every reported runtime just
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.addrspace import (
    BASE_PAGE_SHIFT,
    PhysicalMemoryMap,
    align_up,
)
from ..core.shadow_space import BucketShadowAllocator
from ..core.shadow_table import ENTRY_BYTES
from ..errors import SimulationError
from ..obs.tracer import KERNEL_ENTRY, KERNEL_OP_IDS, REMAP
from .frames import FrameAllocator
from .hpt import HashedPageTable
from .paging import Pager, PagingCosts
from .process import Process
from .promotion import PromotionConfig, PromotionEngine
from .syscalls import SbrkAllocator
from .vm import RemapReport, VmCosts, VmSubsystem


@dataclass(frozen=True)
class KernelCosts:
    """Fixed kernel operation costs, in CPU cycles.

    These are included in total runtimes (the paper simulates from kernel
    initialisation through process exit), and they deliberately dampen
    relative improvements on short runs, as the paper notes for its
    reduced-length compress and vortex runs.
    """

    boot: int = 1_500_000
    fork_exec: int = 400_000
    exit: int = 150_000
    timer_tick: int = 400
    timer_interval: int = 2_400_000  # 10 ms at 240 MHz
    #: Trap entry/decode for an MTLB parity fault (flush-and-refill path).
    parity_fault_overhead: int = 3_000
    #: Per-entry cost of the shadow-table scrub pass after a parity
    #: fault (read + parity verify of one 4-byte entry).
    scrub_entry: int = 25


@dataclass
class KernelLayout:
    """Physical placement of kernel structures in low DRAM."""

    shadow_table_base: int
    hpt_base: int
    reserved_bytes: int

    @property
    def first_user_frame(self) -> int:
        """First frame available to user allocations."""
        return self.reserved_bytes >> BASE_PAGE_SHIFT


@dataclass
class KernelStats:
    """Aggregate kernel activity counters."""

    syscalls: int = 0
    remap_calls: int = 0
    remapped_pages: int = 0
    remapped_superpages: int = 0
    mtlb_faults_serviced: int = 0
    #: MTLB parity faults recovered by flush-and-refill + scrub.
    parity_faults_serviced: int = 0
    #: Shadow-table entries rewritten from kernel records during scrubs.
    scrub_rewrites: int = 0

    def metrics_snapshot(self) -> Dict[str, int]:
        """Flat counter mapping for the machine's metrics registry."""
        return {
            "syscalls": self.syscalls,
            "remap_calls": self.remap_calls,
            "remapped_pages": self.remapped_pages,
            "remapped_superpages": self.remapped_superpages,
            "mtlb_faults_serviced": self.mtlb_faults_serviced,
            "parity_faults_serviced": self.parity_faults_serviced,
            "scrub_rewrites": self.scrub_rewrites,
        }


class MiniKernel:
    """Kernel state shared by one simulated machine."""

    #: Kernel virtual addresses equal physical addresses (an equivalent
    #: mapping covered by the pinned block-TLB entry), so user virtual
    #: ranges must start above the reserved region.
    USER_VBASE_MIN = 0x0100_0000

    def __init__(
        self,
        memory_map: PhysicalMemoryMap,
        shadow_allocator: Optional[BucketShadowAllocator] = None,
        vm_costs: VmCosts = VmCosts(),
        paging_costs: PagingCosts = PagingCosts(),
        costs: KernelCosts = KernelCosts(),
        fragmentation: str = "shuffled",
        seed: int = 1998,
        promotion_config: PromotionConfig = PromotionConfig(),
        all_shadow: bool = False,
        degradation_policy: str = "demote",
    ) -> None:
        self.memory_map = memory_map
        self.costs = costs
        self.layout = self._plan_layout(memory_map)
        self.frames = FrameAllocator(
            first_frame=self.layout.first_user_frame,
            frame_count=memory_map.dram_frames - self.layout.first_user_frame,
            fragmentation=fragmentation,
            seed=seed,
        )
        self.hpt = HashedPageTable(base_paddr=self.layout.hpt_base)
        self.shadow_allocator = shadow_allocator
        self.vm = VmSubsystem(
            memory_map=memory_map,
            frames=self.frames,
            shadow_allocator=shadow_allocator,
            hpt=self.hpt,
            costs=vm_costs,
            degradation=degradation_policy,
        )
        self.pager = Pager(self.vm, paging_costs)
        self.promotion = PromotionEngine(self, promotion_config)
        #: Section 4: route every user mapping through shadow memory.
        self.all_shadow = all_shadow
        self.stats = KernelStats()
        #: Observability event sink (None = null sink): ``kernel_entry``
        #: per costed kernel operation, ``remap`` with per-call latency.
        self.tracer = None
        self._processes: Dict[int, Process] = {}
        self._next_pid = 1
        self.current: Optional[Process] = None
        self.sbrk_allocators: Dict[int, SbrkAllocator] = {}

    @staticmethod
    def _plan_layout(memory_map: PhysicalMemoryMap) -> KernelLayout:
        """Place the shadow table and HPT in low DRAM (paper Section 2.2:
        the OS configures the MMC page table base; the example uses
        physical address 0)."""
        shadow_table_base = 0
        shadow_table_bytes = memory_map.shadow_pages * ENTRY_BYTES
        hpt_base = align_up(shadow_table_bytes, 1 << BASE_PAGE_SHIFT)
        hpt = HashedPageTable(base_paddr=hpt_base)
        kernel_image_bytes = 1 << 20  # text + static data
        reserved = align_up(
            hpt_base + hpt.total_bytes + kernel_image_bytes, 4 << 20
        )
        return KernelLayout(
            shadow_table_base=shadow_table_base,
            hpt_base=hpt_base,
            reserved_bytes=reserved,
        )

    # ------------------------------------------------------------------ #
    # Process lifecycle
    # ------------------------------------------------------------------ #

    def create_process(self, name: str) -> Process:
        """fork()+exec() a new process and make it current."""
        process = Process(pid=self._next_pid, name=name)
        self._next_pid += 1
        self._processes[process.pid] = process
        self.switch_to(process)
        return process

    def switch_to(self, process: Process) -> None:
        """Make *process* current: the HPT switches to its address
        space and resolves against its page tables."""
        self.current = process
        self.hpt.current_space = process.pid
        self.hpt.resolver = process.resolve_vpn

    def sbrk_allocator(
        self,
        process: Process,
        initial_prealloc: int = 8 << 20,
        increment: int = 2 << 20,
        use_superpages: bool = True,
    ) -> SbrkAllocator:
        """Return (creating if needed) the process's sbrk allocator."""
        alloc = self.sbrk_allocators.get(process.pid)
        if alloc is None:
            alloc = SbrkAllocator(
                vm=self.vm,
                process=process,
                initial_prealloc=initial_prealloc,
                increment=increment,
                use_superpages=use_superpages,
            )
            self.sbrk_allocators[process.pid] = alloc
        return alloc

    # ------------------------------------------------------------------ #
    # Syscalls
    # ------------------------------------------------------------------ #

    def sys_map(
        self, process: Process, vaddr: int, length: int
    ) -> int:
        """Map a region with base pages; returns the cycle cost."""
        self.stats.syscalls += 1
        if vaddr < self.USER_VBASE_MIN:
            raise ValueError(
                f"user mapping at {vaddr:#010x} would shadow kernel space"
            )
        if self.all_shadow:
            cycles = self.vm.map_region_all_shadow(process, vaddr, length)
        else:
            cycles = self.vm.map_region(process, vaddr, length)
            self.promotion.register_region(process, vaddr, length)
        if self.tracer is not None:
            self.tracer.emit(
                KERNEL_ENTRY, KERNEL_OP_IDS["sys_map"], cycles
            )
        return cycles

    def sys_remap(
        self, process: Process, vaddr: int, length: int
    ) -> RemapReport:
        """The paper's remap(): move a region onto shadow superpages."""
        self.stats.syscalls += 1
        self.stats.remap_calls += 1
        self.promotion.forget_region(vaddr, length)
        report = self.vm.remap_to_shadow(process, vaddr, length)
        self.stats.remapped_pages += report.pages_remapped
        self.stats.remapped_superpages += report.superpages_created
        if self.tracer is not None:
            self.tracer.emit(
                KERNEL_ENTRY, KERNEL_OP_IDS["sys_remap"],
                report.total_cycles,
            )
            self.tracer.emit(
                REMAP, report.pages_remapped, report.total_cycles
            )
        return report

    def sys_sbrk(self, process: Process, nbytes: int) -> int:
        """Grow the heap through the (possibly modified) sbrk."""
        self.stats.syscalls += 1
        cycles = self.sbrk_allocator(process).sbrk(nbytes)
        if self.tracer is not None:
            self.tracer.emit(
                KERNEL_ENTRY, KERNEL_OP_IDS["sys_sbrk"], cycles
            )
        return cycles

    # ------------------------------------------------------------------ #
    # Fault handling
    # ------------------------------------------------------------------ #

    def handle_mtlb_fault(self, shadow_index: int) -> int:
        """Service an MTLB precise fault: page the base page back in."""
        self.stats.mtlb_faults_serviced += 1
        cycles = self.pager.page_in(shadow_index)
        if self.tracer is not None:
            self.tracer.emit(
                KERNEL_ENTRY, KERNEL_OP_IDS["mtlb_fault_service"], cycles
            )
        return cycles

    def handle_parity_fault(self, shadow_index: int) -> int:
        """Recover from an MTLB parity fault; returns the cycle cost.

        Recovery is the paper's flush-and-refill: cached MTLB state is
        disposable (the shadow table is authoritative), so the kernel
        purges the whole MTLB, then scrubs the shadow-table entries of
        the superpage containing *shadow_index* and rewrites any entry
        whose parity is bad from its own :class:`ShadowSuperpage`
        records.  Raises :class:`~repro.errors.SimulationError` if a
        damaged entry has no owning record to rebuild from.
        """
        machine = self.vm._require_machine()
        mmc = machine.mmc
        self.stats.parity_faults_serviced += 1
        cycles = self.costs.parity_fault_overhead

        # Flush-and-refill: drop every cached translation (one uncached
        # control-register write covers the purge command).
        mmc.mtlb.purge_all()
        cycles += machine.uncached_mmc_write()

        # Scrub the containing superpage's table entries; a fault with
        # no owning record (e.g. a corrupted all-shadow base page) scrubs
        # just the faulting entry.
        record = self.vm.record_for_shadow_index(shadow_index)
        if record is not None:
            first = record.first_shadow_index
            count = record.base_pages
        else:
            first, count = shadow_index, 1
        damaged = mmc.shadow_table.scrub(first, count)
        cycles += count * self.costs.scrub_entry

        for idx in damaged:
            if record is None:
                raise SimulationError(
                    f"parity-damaged shadow entry {idx:#x} has no owning "
                    "superpage record to rebuild from"
                )
            pfn = record.pfns[idx - first]
            if pfn is None:
                # Base page is swapped out: rewrite as not-present; the
                # pager restores the PFN on page-in.
                mmc.write_mapping(idx, 0, valid=False)
            else:
                mmc.write_mapping(idx, pfn, valid=True)
            cycles += machine.uncached_mmc_write()
            self.stats.scrub_rewrites += 1
        if self.tracer is not None:
            self.tracer.emit(
                KERNEL_ENTRY, KERNEL_OP_IDS["parity_fault_service"],
                cycles,
            )
        return cycles

    # ------------------------------------------------------------------ #
    # Accounting helpers
    # ------------------------------------------------------------------ #

    def timer_cycles(self, run_cycles: int) -> int:
        """Timer-interrupt overhead accrued over *run_cycles* of runtime."""
        ticks = run_cycles // self.costs.timer_interval
        return ticks * self.costs.timer_tick
