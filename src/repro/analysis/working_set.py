"""Page-granular working-set profiling of reference traces.

The paper's mechanism pays off exactly when a program's *page working
set* outruns the CPU TLB's reach.  This module measures that directly
from a trace: distinct base pages touched per instruction window, the
footprint growth curve, and per-region touch densities — the raw
material the superpage advisor builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.addrspace import BASE_PAGE_SHIFT
from ..trace.trace import Trace


@dataclass(frozen=True)
class WorkingSetPoint:
    """Distinct pages touched in one instruction window."""

    start_instruction: int
    pages: int


def working_set_series(
    trace: Trace, window_instructions: int = 1_000_000
) -> List[WorkingSetPoint]:
    """Distinct base pages per window of *window_instructions*.

    Windows follow the trace's own time (gaps + references); a window's
    count is the size of its distinct-page set.
    """
    if window_instructions <= 0:
        raise ValueError("window must be positive")
    points: List[WorkingSetPoint] = []
    window_start = 0
    clock = 0
    current: set = set()
    for segment in trace.segments():
        pages = (segment.vaddrs >> BASE_PAGE_SHIFT).tolist()
        gaps = segment.gaps.tolist()
        for page, gap in zip(pages, gaps):
            clock += gap + 1
            current.add(page)
            if clock - window_start >= window_instructions:
                points.append(
                    WorkingSetPoint(window_start, len(current))
                )
                window_start = clock
                current = set()
    if current:
        points.append(WorkingSetPoint(window_start, len(current)))
    return points


def footprint_growth(
    trace: Trace, samples: int = 50
) -> List[Tuple[int, int]]:
    """Cumulative distinct pages over time: (references, total pages).

    A flat tail means the footprint is established early (remap once, as
    the paper's workloads do); continuing growth suggests heap-driven
    promotion (the modified sbrk / online promotion path).
    """
    all_pages = np.concatenate(
        [seg.vaddrs >> BASE_PAGE_SHIFT for seg in trace.segments()]
    )
    n = len(all_pages)
    if n == 0:
        return []
    step = max(1, n // samples)
    seen: set = set()
    out: List[Tuple[int, int]] = []
    for start in range(0, n, step):
        seen.update(all_pages[start:start + step].tolist())
        out.append((min(start + step, n), len(seen)))
    return out


def region_touch_density(
    trace: Trace, regions: List[Tuple[int, int]]
) -> Dict[Tuple[int, int], float]:
    """References per byte for each (base, length) region.

    Dense, hot regions repay a superpage; regions touched once (pure
    streaming) benefit less (one TLB miss per page regardless).
    """
    counts = {region: 0 for region in regions}
    for segment in trace.segments():
        vaddrs = segment.vaddrs
        for region in regions:
            base, length = region
            in_region = np.count_nonzero(
                (vaddrs >= base) & (vaddrs < base + length)
            )
            counts[region] += int(in_region)
    return {
        region: counts[region] / region[1] for region in regions
    }
