"""E2 — Figure 3: the paper's main result matrix.

Five programs x CPU TLB {64, 96, 128} x {no MTLB, 128-entry 2-way MTLB},
normalised to the 96-entry/no-MTLB base.  Prints the two Figure 3 tables
(normalised runtime, TLB-miss-time fraction) and asserts the paper's
qualitative claims hold.
"""

from repro.bench import improvement_summary, run_figure3
from repro.workloads import PAPER_SUITE


def test_figure3(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_figure3(ctx), rounds=1, iterations=1
    )
    print()
    print(result.report)
    gains = improvement_summary(result.matrix, PAPER_SUITE)
    print("\nMTLB improvement at the 96-entry base "
          "(paper: 5-20% for TLB-bound programs):")
    for w, gain in gains.items():
        print(f"  {w:12s} {gain:+.1f}%")
    assert result.shape_errors == [], "\n".join(result.shape_errors)
    # The headline: TLB-constrained programs gain noticeably; nothing
    # regresses materially at the base TLB size.
    assert max(gains.values()) >= 5.0
    assert min(gains.values()) >= -2.0
